"""Kernel-backend registry for the vectorized epoch fast path.

The simulator has two interchangeable implementations of its hot loop:

* ``"scalar"`` — the original pure-python code in
  :mod:`repro.core.system`, :mod:`repro.gpu.performance` and friends.
  It is the golden oracle: every result the fast path produces must be
  byte-identical to it.
* ``"numpy"`` — the batched kernels in :mod:`repro.fastpath.batch`
  (vectorized roofline evaluation) and :mod:`repro.fastpath.epoch`
  (batched epoch advance), selected when numpy is importable.

This module deliberately does **not** import numpy; it only decides
which backend a run should use, so the scalar path keeps working on
boxes without numpy.  Resolution priority:

1. an explicit ``kernel_backend=...`` argument (config / CLI flag),
2. a process-wide override set via :func:`set_default_kernel_backend`,
3. the ``REPRO_KERNEL_BACKEND`` environment variable,
4. auto-detection: ``"numpy"`` when importable, else ``"scalar"``.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Optional

from repro.errors import ConfigError

#: The recognised backend names, in oracle-first order.
KERNEL_BACKENDS = ("scalar", "numpy")

_DEFAULT_OVERRIDE: Optional[str] = None
_NUMPY_AVAILABLE: Optional[bool] = None


def numpy_available() -> bool:
    """True when numpy can be imported (checked once per process)."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        _NUMPY_AVAILABLE = importlib.util.find_spec("numpy") is not None
    return _NUMPY_AVAILABLE


def set_default_kernel_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide backend override.

    Sits between the explicit argument and the environment variable in
    the resolution order; used by the CLI so one ``--kernel-backend``
    flag governs every system a command constructs.
    """
    if name is not None and name not in KERNEL_BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r}; choose from {KERNEL_BACKENDS}"
        )
    global _DEFAULT_OVERRIDE
    _DEFAULT_OVERRIDE = name


def resolve_kernel_backend(name: Optional[str] = None) -> str:
    """Resolve the backend a run should use (see module docstring)."""
    if name is None:
        name = _DEFAULT_OVERRIDE
    if name is None:
        name = os.environ.get("REPRO_KERNEL_BACKEND") or None
    if name is None:
        return "numpy" if numpy_available() else "scalar"
    if name not in KERNEL_BACKENDS:
        raise ConfigError(
            f"unknown kernel backend {name!r}; choose from {KERNEL_BACKENDS}"
        )
    if name == "numpy" and not numpy_available():
        raise ConfigError(
            "kernel backend 'numpy' requested but numpy is not importable; "
            "install numpy or use kernel_backend='scalar'"
        )
    return name


__all__ = [
    "KERNEL_BACKENDS",
    "numpy_available",
    "resolve_kernel_backend",
    "set_default_kernel_backend",
]
