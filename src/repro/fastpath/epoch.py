"""Batched epoch advance: the numpy backend's replacement for the
per-app python loop in :meth:`repro.core.system.MultitaskSystem._step_scalar`.

The scalar step re-derives every application's slice throughput every
epoch even though the inputs — the app's current kernel and its
:class:`ResourceAllocation` — change only at kernel boundaries and
repartitions.  :class:`FastEpochKernel` caches one slot per resident
application holding the last :class:`SliceThroughput` plus the tokens
that prove it is still valid, refreshes the stale slots through the
vectorized :meth:`PerformanceModel.throughput_batch`, and advances the
whole resident set with an inlined fast path of
:meth:`Application.advance`.  Every arithmetic operation is performed in
the same order as the scalar oracle, so results are byte-identical (the
golden regression runs under both backends).

How much the cache may assume depends on the policy, declared via
``PartitionPolicy.throughput_dependence``:

* ``"slice"`` — ``throughput_for`` is exactly ``slice_throughput`` plus
  the ``observe_throughput`` side-effect hook (the base contract).  The
  throughput depends only on (kernel, sms, channels); stale slots are
  batch-refreshed up front and the hook is invoked every epoch in app
  order, like the scalar loop.
* ``"resident-set"`` — the throughput also depends on the *other*
  residents (MPS's shared-memory contention).  Slots are keyed on a
  mutation counter that bumps whenever any app crosses a kernel boundary
  or the partition changes, and dirty slots are recomputed through
  ``policy.throughput_for`` at their in-order turn — reproducing the
  scalar loop's mid-epoch ordering (app B sees app A's new kernel in the
  same epoch) exactly.
* ``"stateful"`` — no caching: ``throughput_for`` is called every epoch
  for every app, like the oracle.  This is the conservative fallback for
  any policy subclass that overrides ``throughput_for`` without
  re-declaring its dependence (the declaration must come from a class at
  the same or lower MRO position as the override to be trusted).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.system import MultitaskSystem, PenaltyCharge
from repro.policies.base import PartitionPolicy
from repro.sim.epoch import EpochResult


class _Slot:
    """Per-application throughput cache entry."""

    __slots__ = ("state", "app", "app_id", "progress", "alloc", "kidx",
                 "throughput", "ipc", "dram", "kernel_len", "mut")

    def __init__(self, state) -> None:
        self.state = state
        self.app = state.app
        self.app_id = state.app.app_id
        self.progress = state.app.progress
        self.alloc = None        #: ResourceAllocation identity token
        self.kidx = -1           #: kernel_index token
        self.throughput = None
        self.ipc = 0.0
        self.dram = 0.0
        self.kernel_len = 0      #: current kernel's instruction count
        self.mut = -1            #: mutation-counter token (resident-set)


class FastEpochKernel:
    """The numpy backend's epoch step, bound to one runner."""

    def __init__(self, runner: MultitaskSystem) -> None:
        self.runner = runner
        #: Bumped whenever any input a cached throughput could depend on
        #: changes: a partition update, or any app crossing a kernel
        #: boundary.  Resident-set slots validate against it.
        self.mutation_count = 0
        #: Bumped on partition updates only; keys the shared
        #: ``detail["allocations"]`` snapshot for closed runs.
        self._partition_version = 0
        self._slots: Dict[int, _Slot] = {}
        #: Slot list in app order; built once for closed runs (membership
        #: is fixed after construction), rebuilt every epoch for open
        #: runs whose membership can change at any boundary.
        self._ordered: Optional[List[_Slot]] = None
        self._alloc_snapshot: Optional[Dict[int, tuple]] = None
        self._alloc_version = -1
        #: Slice slots can only go stale through a partition change or a
        #: kernel crossing, both of which we observe; between them the
        #: per-epoch validity scan is skipped outright.
        self._maybe_dirty = True
        runner_cls = type(runner)
        policy = runner.policy
        # A legacy system subclass that overrides the throughput hooks
        # changes what "slice throughput" means; fall back to calling the
        # runner's hook every epoch.
        self._runner_default_hooks = (
            runner_cls.throughput_for is MultitaskSystem.throughput_for
            and runner_cls.slice_throughput is MultitaskSystem.slice_throughput
        )
        self._capacity_default = (
            runner_cls.capacity_factor is MultitaskSystem.capacity_factor
        )
        # fault_model and total_memory_bytes are fixed at construction.
        self._fault_free = self._capacity_default and runner.fault_model is None
        self.dependence = (
            self._resolve_dependence(policy)
            if self._runner_default_hooks else "stateful"
        )
        self._observe = (
            policy.observe_throughput
            if type(policy).observe_throughput
            is not PartitionPolicy.observe_throughput
            else None
        )
        # Resolve the boundary hook once: None when both the runner's and
        # the policy's are the base no-ops (static policies), otherwise
        # the bound method the scalar dispatch chain would reach.
        if (runner_cls.at_epoch_end is MultitaskSystem.at_epoch_end
                and type(policy).on_epoch_end is PartitionPolicy.on_epoch_end):
            self._epoch_hook = None
        elif runner_cls.at_epoch_end is MultitaskSystem.at_epoch_end:
            self._epoch_hook = policy.on_epoch_end
        else:
            self._epoch_hook = runner.at_epoch_end

    @staticmethod
    def _resolve_dependence(policy) -> str:
        """Trusted ``throughput_dependence`` of ``policy``, else
        ``"stateful"``.

        The declaration is only trusted when it comes from a class at the
        same or lower MRO index as the class owning ``throughput_for`` —
        a subclass that overrides the hook without re-declaring its
        dependence gets the conservative fallback, not its parent's
        promise.  ``"resident-set"`` additionally requires the default
        ``observe_throughput`` (an observe override's interaction with
        caching is unspecified for that contract).
        """
        cls = type(policy)
        mro = cls.__mro__
        dep_owner = next(
            (k for k in mro if "throughput_dependence" in k.__dict__), None)
        tf_owner = next(
            (k for k in mro if "throughput_for" in k.__dict__), None)
        if dep_owner is None or tf_owner is None:
            return "stateful"
        if mro.index(dep_owner) > mro.index(tf_owner):
            return "stateful"
        dep = cls.throughput_dependence
        if dep == "resident-set":
            if (type(policy).observe_throughput
                    is not PartitionPolicy.observe_throughput):
                return "stateful"
            return dep
        return dep if dep == "slice" else "stateful"

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def partition_changed(self) -> None:
        """Called by the runner after any allocation update."""
        self.mutation_count += 1
        self._partition_version += 1
        self._maybe_dirty = True

    def _slot_list(self, apps) -> List[_Slot]:
        slots = self._slots
        ordered: List[_Slot] = []
        for app_id, state in apps.items():
            slot = slots.get(app_id)
            if slot is None or slot.state is not state:
                slot = slots[app_id] = _Slot(state)
            ordered.append(slot)
        return ordered

    # ------------------------------------------------------------------
    # Closed-run driver
    # ------------------------------------------------------------------
    def drive(self, epoch_runner, total_cycles: int):
        """Run a closed simulation on ``epoch_runner``.

        Equivalent to ``epoch_runner.run(self.step, total_cycles)``, with
        one extra trick available when every per-epoch hook is absent
        (slice dependence, no observe/boundary hooks, no tracer, metrics
        or phase profiler, no fault model): between kernel crossings each
        epoch retires exactly the same instruction counts, so the span
        until the next crossing is emitted in a tight loop — per-epoch
        results stay identical, per-app state is advanced in bulk (the
        float DRAM accumulator still performs one addition per epoch to
        preserve the scalar summation order bit-for-bit).
        """
        if total_cycles <= 0:
            raise ValueError(
                f"total_cycles must be positive, got {total_cycles}")
        runner = self.runner
        epoch_cycles = epoch_runner.epoch_cycles
        results = epoch_runner.results
        step = self.step
        elapsed = 0
        index = len(results)
        steady_ok = (
            self.dependence == "slice"
            and self._observe is None
            and self._epoch_hook is None
            and self._fault_free
            and not runner._open
            and runner.tracer is None
            and runner.metrics is None
            and runner.phase_profiler is None
        )
        span_f = float(epoch_cycles)
        while elapsed < total_cycles:
            span = min(epoch_cycles, total_cycles - elapsed)
            result = step(index, span)
            results.append(result)
            elapsed += span
            index += 1
            if not steady_ok or span < epoch_cycles or self._maybe_dirty:
                continue
            remaining_full = (total_cycles - elapsed) // epoch_cycles
            if remaining_full <= 0:
                continue
            # Steady span length: epochs every app survives inside its
            # current kernel at the current per-epoch retire rate.
            ordered = self._ordered
            k = remaining_full
            for slot in ordered:
                if slot.state.penalties:
                    k = 0
                    break
                retired = int(slot.ipc * span_f)
                if retired <= 0:
                    continue  # never crosses: no bound from this app
                left = slot.kernel_len - slot.progress.instructions_done
                steady = (left - 1) // retired
                if steady < k:
                    k = steady
            if k <= 0:
                continue
            shared_instructions = {
                slot.app_id: int(slot.ipc * span_f) for slot in ordered
            }
            snapshot = self._alloc_snapshot
            start = elapsed
            append = results.append
            for _ in range(k):
                end = start + epoch_cycles
                append(
                    EpochResult(
                        index=index,
                        start_cycle=start,
                        end_cycle=end,
                        instructions=shared_instructions,
                        migration_cycles=0,
                        repartitioned=False,
                        detail={"allocations": snapshot},
                    )
                )
                start = end
                index += 1
            for slot in ordered:
                retired = shared_instructions[slot.app_id]
                progress = slot.progress
                progress.instructions_done += retired * k
                progress.total_instructions += retired * k
                state = slot.state
                state.instructions += retired * k
                delta = slot.dram * span_f
                acc = state.dram_bytes
                for _ in range(k):
                    acc += delta
                state.dram_bytes = acc
            elapsed = start
            runner._trace_now = elapsed
        return results

    # ------------------------------------------------------------------
    # The epoch step
    # ------------------------------------------------------------------
    def step(self, epoch_index: int, span: int) -> EpochResult:
        runner = self.runner
        prof = runner.phase_profiler
        if prof is not None:
            prof.begin("epoch")
            prof.begin("epoch.advance")
        apps = runner.apps
        open_system = runner._open
        if open_system:
            ordered = self._slot_list(apps)
        else:
            ordered = self._ordered
            if ordered is None:
                ordered = self._ordered = self._slot_list(apps)
        dependence = self.dependence
        observe = self._observe
        fault_free = self._fault_free
        instructions: Dict[int, int] = {}
        migration_cycles = 0.0
        span_f = float(span)

        # ---- resolve throughputs and advance the resident set ---------
        if dependence == "slice":
            if self._maybe_dirty:
                dirty: Optional[List[_Slot]] = None
                for slot in ordered:
                    if (slot.alloc is not slot.state.allocation
                            or slot.kidx != slot.progress.kernel_index):
                        if dirty is None:
                            dirty = [slot]
                        else:
                            dirty.append(slot)
                if dirty is not None:
                    self._refresh_slice_slots(dirty)
            bumps = 0
            for slot in ordered:
                state = slot.state
                if observe is not None:
                    observe(state, slot.throughput)
                penalties = state.penalties
                if penalties:
                    lost = 0.0
                    consumed: List[PenaltyCharge] = []
                    for charge in penalties:
                        take_window = min(charge.window_cycles, span)
                        lost += take_window * charge.factor
                        if charge.counts_as_migration:
                            migration_cycles = max(
                                migration_cycles, take_window)
                        if charge.window_cycles > span:
                            consumed.append(
                                PenaltyCharge(
                                    charge.window_cycles - span,
                                    charge.factor,
                                    charge.counts_as_migration,
                                )
                            )
                    state.penalties = consumed
                    effective = max(0.0, span - lost)
                else:
                    effective = span_f
                if fault_free:
                    retired = int(slot.ipc * effective)
                else:
                    retired = int(
                        slot.ipc * effective
                        * runner.capacity_factor(state, slot.throughput)
                    )
                progress = slot.progress
                if retired < slot.kernel_len - progress.instructions_done:
                    # Inlined Application.advance: stays inside the
                    # current kernel, so only the two counters move.
                    progress.instructions_done += retired
                    progress.total_instructions += retired
                else:
                    before_index = progress.kernel_index
                    slot.app.advance(retired)
                    if progress.kernel_index != before_index:
                        bumps += 1
                state.instructions += retired
                state.dram_bytes += slot.dram * effective
                instructions[slot.app_id] = retired
            if bumps:
                # Kernel crossings invalidate resident-set caches; for
                # slice slots the kidx token already covers them.
                self.mutation_count += bumps
            # Open systems can swap residents at any boundary; closed
            # ones only dirty slots via crossings (partition_changed
            # re-raises the flag on repartition, which may happen in the
            # epoch hook below).
            self._maybe_dirty = bumps > 0 or open_system
        else:
            policy_throughput = runner.policy.throughput_for
            runner_throughput = runner.throughput_for
            resident_set = dependence == "resident-set"
            for slot in ordered:
                state = slot.state
                if resident_set:
                    # Validation happens inside the loop: an earlier
                    # app's kernel change must dirty the later apps'
                    # slots within the same epoch (the scalar loop's
                    # mid-epoch ordering).
                    if slot.mut != self.mutation_count:
                        throughput = policy_throughput(state)
                        slot.throughput = throughput
                        slot.ipc = throughput.ipc
                        slot.dram = throughput.dram_bytes_per_cycle
                        slot.kernel_len = slot.app.current_kernel.instructions
                        slot.mut = self.mutation_count
                    else:
                        throughput = slot.throughput
                else:
                    throughput = runner_throughput(state)
                    slot.throughput = throughput
                    slot.ipc = throughput.ipc
                    slot.dram = throughput.dram_bytes_per_cycle
                    slot.kernel_len = slot.app.current_kernel.instructions
                penalties = state.penalties
                if penalties:
                    lost = 0.0
                    consumed = []
                    for charge in penalties:
                        take_window = min(charge.window_cycles, span)
                        lost += take_window * charge.factor
                        if charge.counts_as_migration:
                            migration_cycles = max(
                                migration_cycles, take_window)
                        if charge.window_cycles > span:
                            consumed.append(
                                PenaltyCharge(
                                    charge.window_cycles - span,
                                    charge.factor,
                                    charge.counts_as_migration,
                                )
                            )
                    state.penalties = consumed
                    effective = max(0.0, span - lost)
                else:
                    effective = span_f
                if fault_free:
                    retired = int(slot.ipc * effective)
                else:
                    retired = int(
                        slot.ipc * effective
                        * runner.capacity_factor(state, throughput)
                    )
                progress = slot.progress
                if retired < slot.kernel_len - progress.instructions_done:
                    progress.instructions_done += retired
                    progress.total_instructions += retired
                else:
                    before_index = progress.kernel_index
                    slot.app.advance(retired)
                    if progress.kernel_index != before_index:
                        self.mutation_count += 1
                state.instructions += retired
                state.dram_bytes += slot.dram * effective
                instructions[slot.app_id] = retired

        # ---- epilogue (identical to the scalar step) ------------------
        start_cycle = epoch_index * runner.epoch_cycles
        result = EpochResult(
            index=epoch_index,
            start_cycle=start_cycle,
            end_cycle=start_cycle + span,
            instructions=instructions,
            migration_cycles=int(migration_cycles),
            repartitioned=False,
        )
        before = runner.repartitions
        runner._trace_now = result.end_cycle
        if prof is not None:
            prof.end("epoch.advance")
            prof.begin("epoch.policy")
        epoch_hook = self._epoch_hook
        if epoch_hook is not None and apps:
            epoch_hook(epoch_index, span)
        if prof is not None:
            prof.end("epoch.policy")
        if open_system:
            if prof is not None:
                with prof.span("epoch.lifecycle"):
                    runner._process_boundary(result.end_cycle)
            else:
                runner._process_boundary(result.end_cycle)
            # Membership may just have changed: snapshot directly.
            result.detail["allocations"] = {
                app_id: (state.allocation.sms, state.allocation.channels)
                for app_id, state in apps.items()
            }
        else:
            # Closed runs: the snapshot only changes on repartition, so
            # epochs between repartitions share one dict object.
            snapshot = self._alloc_snapshot
            if snapshot is None or self._alloc_version != self._partition_version:
                snapshot = {
                    app_id: (state.allocation.sms, state.allocation.channels)
                    for app_id, state in apps.items()
                }
                self._alloc_snapshot = snapshot
                self._alloc_version = self._partition_version
            result.detail["allocations"] = snapshot
        result.repartitioned = runner.repartitions > before
        if runner.tracer is not None:
            runner.tracer.emit(
                "epoch", f"epoch[{epoch_index}]",
                time=result.start_cycle, duration=span,
                instructions=sum(instructions.values()),
                migration_cycles=result.migration_cycles,
                repartitioned=result.repartitioned,
            )
        if runner.metrics is not None:
            runner._epoch_metrics(result, span, instructions)
        if prof is not None:
            prof.end("epoch")
        return result

    def _refresh_slice_slots(self, dirty: List[_Slot]) -> None:
        """Batch-recompute the stale slice throughputs (memo-first)."""
        kernels = []
        sms = []
        channels = []
        for slot in dirty:
            state = slot.state
            kernels.append(slot.app.current_kernel)
            sms.append(state.allocation.sms)
            channels.append(state.allocation.channels)
        results = self.runner.perf.throughput_batch(kernels, sms, channels)
        for slot, kernel, throughput in zip(dirty, kernels, results):
            slot.alloc = slot.state.allocation
            slot.kidx = slot.progress.kernel_index
            slot.throughput = throughput
            slot.ipc = throughput.ipc
            slot.dram = throughput.dram_bytes_per_cycle
            slot.kernel_len = kernel.instructions

    # ------------------------------------------------------------------
    # Epoch-batched solo run (the Equation 3/4 denominator)
    # ------------------------------------------------------------------
    def solo_instructions(self, app, total_cycles: int) -> int:
        """Instructions the app retires running alone for the horizon.

        Bit-identical to the scalar per-epoch loop: as long as the solo
        app stays inside one kernel, every full epoch retires the same
        ``int(ipc * span * factor)``, so ``k`` such epochs collapse into
        one ``advance(retired * k)`` call (``Application.advance`` is
        additive, including the first-launch instruction capture).
        """
        runner = self.runner
        perf = runner.perf
        num_sms = runner.config.num_sms
        num_channels = runner.config.num_channels
        epoch = runner.epoch_cycles
        fault_model = runner.fault_model
        solo = app.clone()
        progress = solo.progress
        instructions = 0
        elapsed = 0
        while elapsed < total_cycles:
            span = min(epoch, total_cycles - elapsed)
            kernel = solo.kernels[progress.kernel_index]
            t = perf.throughput(kernel, num_sms, num_channels)
            factor = 1.0
            if fault_model is not None:
                charge = fault_model.charge(
                    solo.footprint_bytes,
                    float(runner.total_memory_bytes),
                    t.dram_bytes_per_cycle,
                )
                factor = charge.throughput_factor
            retired = int(t.ipc * span * factor)
            if span < epoch:
                solo.advance(retired)
                instructions += retired
                elapsed += span
                continue
            remaining_full = (total_cycles - elapsed) // epoch
            if retired <= 0:
                # advance(0) is a no-op, so every remaining full epoch
                # repeats it verbatim; skip straight to the tail.
                elapsed += remaining_full * epoch
                continue
            left = kernel.instructions - progress.instructions_done
            k = -(-left // retired)  # epochs until the kernel boundary
            if k > remaining_full:
                k = remaining_full
            solo.advance(retired * k)
            instructions += retired * k
            elapsed += epoch * k
        return instructions
