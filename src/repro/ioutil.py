"""Shared text-file IO with transparent gzip support.

Fleet-scale observability artifacts (trace JSONL, obslog JSONL, metric
expositions, epoch CSV series) grow linearly with nodes x rounds, and a
datacenter-sized run produces files that are painful to ship around
uncompressed.  Every writer and reader in :mod:`repro.trace`,
:mod:`repro.obslog` and :mod:`repro.telemetry` funnels through
:func:`open_text`, which switches to :mod:`gzip` whenever the path ends
in ``.gz`` — so compression is purely a naming decision at the call
site (``--trace-out run.jsonl.gz``) and round-trips are transparent:
``read_jsonl("trace.jsonl.gz")`` just works.

Gzip streams are opened in text mode (``"rt"``/``"wt"``) with UTF-8, so
callers see the exact same file-object contract either way.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Union

PathLike = Union[str, Path]


def is_gzip_path(path: PathLike) -> bool:
    """True when ``path`` names a gzip stream (``.gz`` suffix)."""
    return str(path).endswith(".gz")


def open_text(path: PathLike, mode: str = "r", *,
              newline: str = None) -> IO[str]:
    """Open ``path`` for text IO, gzip-compressed when it ends in ``.gz``.

    ``mode`` is ``"r"``, ``"w"`` or ``"a"`` — the text-ness and UTF-8
    encoding are applied here so call sites stay one-argument simple.
    ``newline`` passes through for CSV writers that need ``""``.
    """
    if mode not in ("r", "w", "a"):
        raise ValueError(f"open_text mode must be r/w/a, got {mode!r}")
    if is_gzip_path(path):
        # gzip.open's text mode accepts newline= the same way open does.
        return gzip.open(path, mode + "t", encoding="utf-8", newline=newline)
    return open(path, mode, encoding="utf-8", newline=newline)
