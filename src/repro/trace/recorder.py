"""Typed, ring-buffered trace recording (zero overhead when disabled).

The reproduction's headline claims are *time-resolved*: Figure 11's
PageMove breakdown, Figure 12a's per-epoch reallocation occupancy and
Figure 16's QoS interventions are all stories about *when* something
happened, not just how much of it.  :class:`TraceRecorder` is the shared
substrate every silent layer reports into:

* :class:`~repro.sim.engine.EventQueue` — event fire hooks (``event``);
* :class:`~repro.core.system.MultitaskSystem` — epoch boundaries
  (``epoch``) and, in :class:`~repro.core.ugpu.UGPUSystem`, partition
  decisions (``realloc``), QoS interventions (``qos``) and migration
  windows (``migration``);
* :class:`~repro.pagemove.engine.MigrationEngine` — plan sizes and
  execution charges (``migration``);
* :class:`~repro.vm.driver.GPUDriver` — faults by kind (``fault``);
* :class:`~repro.exec.executor.SweepExecutor` — job start/end (``job``)
  and cache hits/misses (``cache``).

Design constraints, in order:

1. **Zero overhead when absent.**  Every instrumented component defaults
   ``tracer=None`` and guards each emission with a single ``is not
   None`` check, so untraced simulations produce byte-identical results.
2. **Bounded memory.**  The buffer is a ring (``collections.deque`` with
   ``maxlen``): a 25M-cycle sweep cannot OOM the recorder; ``dropped``
   counts evictions so truncation is never silent.
3. **Typed records.**  :class:`TraceEvent` is plain data — category,
   name, time, optional duration, free-form args — so exporters
   (:mod:`repro.trace.export`) and summaries (:mod:`repro.trace.summary`)
   need no knowledge of the emitting layer.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Union

from repro.errors import ConfigError


class TraceCategory(str, enum.Enum):
    """The event categories the instrumented layers emit.

    Members are ``str`` subclasses so category filters and exported
    records can use the plain lowercase names interchangeably.
    """

    EPOCH = "epoch"          #: epoch boundaries (Figure 12a's x-axis)
    REALLOC = "realloc"      #: partition decisions applied/suppressed
    MIGRATION = "migration"  #: migration plans, windows and charges
    FAULT = "fault"          #: driver faults by kind (demand/lost/rebalance)
    QOS = "qos"              #: QoS enforcement interventions (Figure 16)
    CACHE = "cache"          #: result-cache hits and misses
    EVENT = "event"          #: raw discrete-event fires (EventQueue)
    JOB = "job"              #: sweep-executor job start/end
    ARRIVAL = "arrival"      #: open-system job arrival (enters the queue)
    ADMISSION = "admission"  #: open-system job admitted to a slice
    DEPARTURE = "departure"  #: open-system job retired its budget
    PHASE = "phase"          #: host-time simulator phases (PhaseProfiler)
    FLEET = "fleet"          #: fleet-coordinator lifecycle (arrive/admit/...)
    NODE = "node"            #: worker-side node-physics spans (fleet shards)
    HEALTH = "health"        #: fleet health-monitor incidents

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Event kinds: a ``span`` covers ``[time, time + duration)``; an
#: ``instant`` is a point sample.
KIND_INSTANT = "instant"
KIND_SPAN = "span"

_VALID_CATEGORIES = frozenset(c.value for c in TraceCategory)


def _category_value(category: Union[str, TraceCategory]) -> str:
    value = category.value if isinstance(category, TraceCategory) else str(category)
    if value not in _VALID_CATEGORIES:
        raise ConfigError(
            f"unknown trace category {value!r}; known: "
            f"{', '.join(sorted(_VALID_CATEGORIES))}"
        )
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One typed trace record.

    ``time`` and ``duration`` are in the emitting component's native
    clock domain — GPU cycles for the simulation layers, seconds for the
    sweep executor.  ``seq`` is a recorder-global monotonic counter that
    preserves emission order across same-timestamp events.
    """

    seq: int
    time: float
    category: str
    name: str
    kind: str = KIND_INSTANT
    duration: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_time(self) -> float:
        return self.time + self.duration

    def to_dict(self) -> Dict[str, Any]:
        """A flat, JSON-ready mapping (the JSONL record shape)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.time,
            "cat": self.category,
            "name": self.name,
            "kind": self.kind,
        }
        if self.duration:
            record["dur"] = self.duration
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (the JSONL reader)."""
        return cls(
            seq=int(record["seq"]),
            time=float(record["ts"]),
            category=str(record["cat"]),
            name=str(record["name"]),
            kind=str(record.get("kind", KIND_INSTANT)),
            duration=float(record.get("dur", 0.0)),
            args=dict(record.get("args", {})),
        )


class TraceRecorder:
    """Ring-buffered trace sink shared by the instrumented layers.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are dropped (and counted in
        :attr:`dropped`) once full.
    categories:
        Optional allow-list; events in other categories are counted in
        :attr:`filtered` and discarded at the emission site.
    enabled:
        Master switch.  A disabled recorder's :meth:`emit` returns
        immediately, so instrumentation left in place costs one
        attribute load and a branch.
    """

    def __init__(
        self,
        capacity: int = 65_536,
        categories: Optional[Iterable[Union[str, TraceCategory]]] = None,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.categories: Optional[FrozenSet[str]] = (
            frozenset(_category_value(c) for c in categories)
            if categories is not None
            else None
        )
        self.enabled = enabled
        self._seq = 0
        self.emitted = 0    #: events accepted into the ring
        self.dropped = 0    #: events evicted by ring wraparound
        self.filtered = 0   #: events rejected by the category filter

    def __len__(self) -> int:
        return len(self._buffer)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def wants(self, category: Union[str, TraceCategory]) -> bool:
        """Would an event in ``category`` currently be recorded?

        Instrumentation whose *argument construction* is expensive can
        guard on this to skip the work entirely.
        """
        if not self.enabled:
            return False
        value = category.value if isinstance(category, TraceCategory) else category
        return self.categories is None or value in self.categories

    def emit(
        self,
        category: Union[str, TraceCategory],
        name: str,
        time: float = 0.0,
        duration: float = 0.0,
        kind: Optional[str] = None,
        **args: Any,
    ) -> Optional[TraceEvent]:
        """Record one event; returns it, or None if disabled/filtered.

        ``kind`` defaults to ``span`` when a duration is given and
        ``instant`` otherwise.
        """
        if not self.enabled:
            return None
        value = _category_value(category)
        if self.categories is not None and value not in self.categories:
            self.filtered += 1
            return None
        event = TraceEvent(
            seq=self._seq,
            time=float(time),
            category=value,
            name=name,
            kind=kind if kind is not None else (KIND_SPAN if duration else KIND_INSTANT),
            duration=float(duration),
            args=args,
        )
        self._seq += 1
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)
        self.emitted += 1
        return event

    def absorb(
        self,
        events: Iterable[TraceEvent],
        time_shift: float = 0.0,
        **extra: Any,
    ) -> int:
        """Merge events captured elsewhere (another process) into this ring.

        Each absorbed event is re-sequenced into this recorder's order,
        shifted by ``time_shift`` (e.g. a worker's round-relative cycle
        times re-anchored at the orchestrator's round start), and
        stamped with the ``extra`` correlation args (``run_id`` /
        ``shard_id`` / ``pid`` / ...) — without overriding args the
        worker already set.  The category filter, ring bound and
        counters apply exactly as for :meth:`emit`.  Returns the number
        of events accepted.
        """
        if not self.enabled:
            return 0
        absorbed = 0
        for event in events:
            value = _category_value(event.category)
            if self.categories is not None and value not in self.categories:
                self.filtered += 1
                continue
            args = dict(event.args)
            for key, val in extra.items():
                if val is not None:
                    args.setdefault(key, val)
            merged = TraceEvent(
                seq=self._seq,
                time=event.time + float(time_shift),
                category=value,
                name=event.name,
                kind=event.kind,
                duration=event.duration,
                args=args,
            )
            self._seq += 1
            if len(self._buffer) == self.capacity:
                self.dropped += 1
            self._buffer.append(merged)
            self.emitted += 1
            absorbed += 1
        return absorbed

    def events(
        self, category: Optional[Union[str, TraceCategory]] = None
    ) -> List[TraceEvent]:
        """The buffered events in emission order, optionally one category."""
        if category is None:
            return list(self._buffer)
        value = _category_value(category)
        return [e for e in self._buffer if e.category == value]

    def clear(self) -> int:
        """Empty the ring (counters keep accumulating); returns count."""
        removed = len(self._buffer)
        self._buffer.clear()
        return removed
