"""Derived metrics over a trace: the paper's time-resolved headlines.

:func:`summarize` folds a flat event list into the quantities the
evaluation sections plot:

* **fault rate per epoch** — driver faults (``fault`` events) over
  observed epochs, split by kind (Figure 11's PageMove breakdown is the
  lost-channel/rebalance split);
* **migration stall fraction** — epoch cycles consumed by reallocation
  windows over total simulated cycles (Figure 12a's occupancy series);
* **reallocation cadence** — mean epochs between *applied* partition
  decisions (plus how many were suppressed by hysteresis);
* **QoS interventions** — how often enforcement moved resources
  (Figure 16's story).

The summary works from events alone — it never needs the system object
— so it applies equally to a live recorder, a re-read JSONL file, or a
trace produced by another tool emitting the same record shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.trace.recorder import KIND_SPAN, TraceCategory, TraceEvent


@dataclass
class TraceSummary:
    """Aggregate view of one trace (see :func:`summarize`)."""

    total_events: int = 0
    #: Events the recorder's ring buffer overwrote before export.  A
    #: non-zero value means every derived rate below undercounts.
    dropped_events: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)
    epochs: int = 0
    total_cycles: float = 0.0
    faults: int = 0
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    migration_cycles: float = 0.0
    reallocations_applied: int = 0
    reallocations_suppressed: int = 0
    realloc_epochs: List[int] = field(default_factory=list)
    qos_interventions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def fault_rate_per_epoch(self) -> float:
        """Driver faults per observed epoch (0 when no epochs traced)."""
        return self.faults / self.epochs if self.epochs else 0.0

    @property
    def migration_stall_fraction(self) -> float:
        """Fraction of simulated cycles inside reallocation windows,
        clamped to 1.0 for plotting; check
        :attr:`migration_stall_fraction_raw` for accounting sanity."""
        return min(1.0, self.migration_stall_fraction_raw)

    @property
    def migration_stall_fraction_raw(self) -> float:
        """The unclamped ratio.  A value above 1.0 means migration
        windows were charged more cycles than the epochs they sit in —
        an accounting bug upstream, not a plottable occupancy."""
        if self.total_cycles <= 0:
            return 0.0
        return self.migration_cycles / self.total_cycles

    @property
    def reallocation_cadence_epochs(self) -> Optional[float]:
        """Mean epochs between applied reallocations (None if < 2)."""
        if len(self.realloc_epochs) < 2:
            return None
        gaps = [
            b - a for a, b in zip(self.realloc_epochs, self.realloc_epochs[1:])
        ]
        return sum(gaps) / len(gaps)

    def format(self) -> str:
        """A short human-readable report (the CLI footer)."""
        lines = [
            f"trace: {self.total_events} events "
            + " ".join(
                f"{cat}={n}" for cat, n in sorted(self.by_category.items())
            )
        ]
        if self.dropped_events:
            lines.append(
                f"WARNING: ring buffer dropped {self.dropped_events} oldest "
                "events; rates below undercount"
            )
        if self.epochs:
            raw = self.migration_stall_fraction_raw
            stall_note = (
                f" (RAW {raw:.3f} > 1 — migration accounting bug?)"
                if raw > 1.0 else ""
            )
            lines.append(
                f"epochs: {self.epochs} covering {self.total_cycles:,.0f} cycles; "
                f"migration stall {self.migration_stall_fraction:.1%}{stall_note}"
            )
        if self.faults:
            kinds = " ".join(
                f"{k}={n}" for k, n in sorted(self.faults_by_kind.items())
            )
            lines.append(
                f"faults: {self.faults} ({kinds}); "
                f"{self.fault_rate_per_epoch:.1f}/epoch"
            )
        if self.reallocations_applied or self.reallocations_suppressed:
            cadence = self.reallocation_cadence_epochs
            cadence_text = (
                f", cadence {cadence:.1f} epochs" if cadence is not None else ""
            )
            lines.append(
                f"reallocations: {self.reallocations_applied} applied, "
                f"{self.reallocations_suppressed} suppressed{cadence_text}"
            )
        if self.qos_interventions:
            lines.append(f"qos interventions: {self.qos_interventions}")
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"cache: {self.cache_hits} hits, {self.cache_misses} misses"
            )
        return "\n".join(lines)


def summarize(events: Sequence[TraceEvent],
              dropped_events: int = 0) -> TraceSummary:
    """Fold ``events`` into a :class:`TraceSummary`.

    ``dropped_events`` is the recorder's ring-buffer overwrite count
    (:attr:`TraceRecorder.dropped`); pass it so the summary can flag
    that its rates undercount.
    """
    summary = TraceSummary(total_events=len(events),
                           dropped_events=dropped_events)
    for event in events:
        summary.by_category[event.category] = (
            summary.by_category.get(event.category, 0) + 1
        )
        if event.category == TraceCategory.EPOCH.value:
            summary.epochs += 1
            summary.total_cycles += (
                event.duration if event.kind == KIND_SPAN else 0.0
            )
            summary.migration_cycles += float(
                event.args.get("migration_cycles", 0.0)
            )
        elif event.category == TraceCategory.FAULT.value:
            summary.faults += 1
            summary.faults_by_kind[event.name] = (
                summary.faults_by_kind.get(event.name, 0) + 1
            )
        elif event.category == TraceCategory.REALLOC.value:
            if event.name == "apply":
                summary.reallocations_applied += 1
                epoch = event.args.get("epoch")
                if epoch is not None:
                    summary.realloc_epochs.append(int(epoch))
            elif event.name == "suppress":
                summary.reallocations_suppressed += 1
        elif event.category == TraceCategory.QOS.value:
            summary.qos_interventions += 1
        elif event.category == TraceCategory.CACHE.value:
            if event.name == "hit":
                summary.cache_hits += 1
            elif event.name == "miss":
                summary.cache_misses += 1
    summary.realloc_epochs.sort()
    return summary
