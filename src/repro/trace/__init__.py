"""Simulation tracing & metrics: typed event records for every layer.

The package has three pieces:

* :mod:`repro.trace.recorder` — :class:`TraceRecorder` (ring-buffered,
  zero overhead when disabled) and the typed :class:`TraceEvent` /
  :class:`TraceCategory` records;
* :mod:`repro.trace.export` — JSONL round-trip plus a
  ``chrome://tracing`` / Perfetto exporter;
* :mod:`repro.trace.summary` — derived metrics (fault rate per epoch,
  migration stall fraction, reallocation cadence).

Quickstart::

    from repro import UGPUSystem, build_mix
    from repro.trace import TraceRecorder, summarize, write_chrome_trace

    tracer = TraceRecorder()
    system = UGPUSystem(build_mix(["PVC", "DXTC"]).applications, tracer=tracer)
    system.run(25_000_000)
    print(summarize(tracer.events()).format())
    write_chrome_trace(tracer.events(), "ugpu.chrome.json")  # open in Perfetto
"""

from repro.trace.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.recorder import (
    KIND_INSTANT,
    KIND_SPAN,
    TraceCategory,
    TraceEvent,
    TraceRecorder,
)
from repro.trace.summary import TraceSummary, summarize

__all__ = [
    "KIND_INSTANT",
    "KIND_SPAN",
    "TraceCategory",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "chrome_trace",
    "read_jsonl",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
]
