"""Trace exporters: JSONL (machine-readable) and Chrome-trace (visual).

Two formats cover the two consumers:

* **JSONL** — one :meth:`~repro.trace.recorder.TraceEvent.to_dict`
  record per line.  Greppable, streamable, round-trippable
  (:func:`read_jsonl` reconstructs the exact event list), and the format
  the CI smoke test validates.
* **Chrome trace** — the ``chrome://tracing`` / `Perfetto
  <https://ui.perfetto.dev>`_ JSON object format.  ``span`` events
  become complete (``"ph": "X"``) slices, ``instant`` events become
  global instants (``"ph": "i"``); rows (``tid``) are one per category,
  with per-app sub-rows when the event carries an ``app_id``.

Simulation-layer timestamps are GPU cycles; Chrome traces want
microseconds, so :func:`chrome_trace` divides by ``clock_ghz * 1000``
cycles-per-microsecond (default 1 GHz, so 1 ms of trace = 1M cycles).

Paths ending in ``.gz`` are read and written gzip-compressed (see
:mod:`repro.ioutil`); fleet-scale JSONL traces shrink roughly 20x.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.errors import ConfigError
from repro.ioutil import open_text
from repro.trace.recorder import KIND_SPAN, TraceEvent

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Write one JSON record per line; returns the number written."""
    count = 0
    with open_text(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise ConfigError(
                    f"{path}:{line_no}: malformed trace record: {exc}"
                ) from exc
    return events


# ----------------------------------------------------------------------
# Chrome trace (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------
def _pid_table(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """Stable Chrome pids for merged multi-process events.

    Events absorbed from pool workers carry a ``worker`` token — a
    per-process UUID, *not* the OS pid, because the OS recycles pids
    across rounds and keying on one would interleave two different
    workers' spans onto one track.  Each distinct token gets Chrome pid
    1..N in first-appearance order; pid 0 is the orchestrator.
    """
    table: Dict[str, int] = {}
    for event in events:
        token = event.args.get("worker")
        if token is not None and token not in table:
            table[token] = len(table) + 1
    return table


def _row_key(event: TraceEvent, pids: Dict[str, int]) -> tuple:
    """(chrome_pid, category, sub-row) — the track an event renders on."""
    pid = pids.get(event.args.get("worker"), 0)
    if event.category == "node":
        sub = event.args.get("node")
    else:
        sub = event.args.get("app_id")
    return (pid, event.category, sub)


def _tid_table(
    events: Sequence[TraceEvent], pids: Dict[str, int]
) -> Dict[tuple, int]:
    """Stable row ids, one per (pid, category, sub-row), in first-
    appearance order so the Perfetto track layout is deterministic."""
    table: Dict[tuple, int] = {}
    for event in events:
        row = _row_key(event, pids)
        if row not in table:
            table[row] = len(table)
    return table


def chrome_trace(
    events: Sequence[TraceEvent], clock_ghz: float = 1.0
) -> Dict[str, Any]:
    """Build the Chrome-trace JSON object for ``events``.

    The result loads directly in ``chrome://tracing`` and Perfetto.
    Merged multi-process traces (fleet runs with worker capture) place
    orchestrator events on pid 0 and each worker's events on its own
    pid track, named after the worker's OS pid; single-process traces
    keep the original pid-0-only layout.
    """
    if clock_ghz <= 0:
        raise ConfigError(f"clock_ghz must be positive, got {clock_ghz}")
    cycles_per_us = clock_ghz * 1000.0
    pids = _pid_table(events)
    rows = _tid_table(events, pids)
    trace_events: List[Dict[str, Any]] = []
    if pids:
        trace_events.append({
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "orchestrator"},
        })
        os_pids: Dict[str, Any] = {}
        for event in events:
            token = event.args.get("worker")
            if token is not None and token not in os_pids:
                os_pids[token] = event.args.get("pid")
        for token, chrome_pid in sorted(pids.items(), key=lambda kv: kv[1]):
            trace_events.append({
                "ph": "M", "pid": chrome_pid, "tid": 0,
                "name": "process_name",
                "args": {"name": f"worker-{chrome_pid} (pid {os_pids[token]})"},
            })
    for (pid, category, sub), tid in sorted(rows.items(), key=lambda kv: kv[1]):
        if sub is None:
            label = category
        elif category == "node":
            label = f"node {sub}"
        else:
            label = f"{category} (app {sub})"
        trace_events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": label},
        })
    for event in events:
        pid, _, _ = row = _row_key(event, pids)
        tid = rows[row]
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "pid": pid,
            "tid": tid,
            "ts": event.time / cycles_per_us,
            "args": dict(event.args),
        }
        if event.kind == KIND_SPAN:
            record["ph"] = "X"
            record["dur"] = event.duration / cycles_per_us
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.trace", "clock_ghz": clock_ghz},
    }


def write_chrome_trace(
    events: Sequence[TraceEvent], path: PathLike, clock_ghz: float = 1.0
) -> int:
    """Write the Chrome-trace JSON; returns the number of trace events."""
    payload = chrome_trace(events, clock_ghz=clock_ghz)
    with open_text(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])
