"""Hardware cost model of the partitioning logic (paper Section 3.3).

The algorithm runs on a fixed-function unit with a single ALU: additions
and comparisons take 1 cycle, multiplications 3 cycles, divisions 25
cycles.  For 4 applications the paper derives:

* bandwidth demand-and-supply calculation: **148 cycles**,
* one redistribution iteration: **162 cycles**,
* with the 20-iteration break: a maximum of **3388 cycles**,

all of which this model reproduces exactly and generalizes to other
application counts.  The latency is charged once per reallocation and can
be hidden by starting before the epoch boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class AlgorithmCostModel:
    """Cycle accounting for the demand-aware algorithm's ALU."""

    add_cycles: int = 1
    compare_cycles: int = 1
    multiply_cycles: int = 3
    divide_cycles: int = 25
    max_iterations: int = 20

    def __post_init__(self) -> None:
        for name in ("add_cycles", "compare_cycles", "multiply_cycles",
                     "divide_cycles", "max_iterations"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def demand_calc_cycles(self, num_apps: int = 4) -> int:
        """Bandwidth demand (and hidden supply) calculation.

        Per application: four multiplications and one division (the supply
        calculation is cheaper and fully hidden behind it).
        """
        self._check_apps(num_apps)
        per_app = 4 * self.multiply_cycles + self.divide_cycles
        return num_apps * per_app

    def iteration_cycles(self, num_apps: int = 4) -> int:
        """One loop iteration: part (a) classification for every app (four
        multiplications, one division, one comparison each) plus part (b)
        selection (six comparisons) and allocation updates (four adds)."""
        self._check_apps(num_apps)
        part_a = num_apps * (
            4 * self.multiply_cycles + self.divide_cycles + self.compare_cycles
        )
        part_b = 6 * self.compare_cycles + 4 * self.add_cycles
        return part_a + part_b

    def total_cycles(self, iterations: int, num_apps: int = 4) -> int:
        """End-to-end latency of a run with ``iterations`` loop turns."""
        if iterations < 0:
            raise ConfigError("iterations must be non-negative")
        capped = min(iterations, self.max_iterations)
        return self.demand_calc_cycles(num_apps) + capped * self.iteration_cycles(num_apps)

    def max_latency_cycles(self, num_apps: int = 4) -> int:
        """Worst-case latency with the enforced iteration break (3388
        cycles for 4 applications)."""
        return self.total_cycles(self.max_iterations, num_apps)

    def hidden_by_epoch(self, epoch_cycles: int, num_apps: int = 4) -> bool:
        """Can the run be fully overlapped with the tail of an epoch?"""
        if epoch_cycles <= 0:
            raise ConfigError("epoch_cycles must be positive")
        return self.max_latency_cycles(num_apps) <= epoch_cycles

    @staticmethod
    def _check_apps(num_apps: int) -> None:
        if num_apps <= 0:
            raise ConfigError("num_apps must be positive")
