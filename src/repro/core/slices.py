"""GPU slices: dedicated, possibly unbalanced, resource allocations.

A :class:`ResourceAllocation` is the (SMs, memory channels) pair a slice
owns; :class:`PartitionState` tracks all co-executing slices and enforces
the physical budget (80 SMs, 32 channels in Table 1).  Memory channels
move in groups of ``num_stacks`` — one channel per HBM stack — so the
Figure 8 address mapping's "at least one channel per stack" invariant
always holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.errors import AllocationError


@dataclass(frozen=True)
class ResourceAllocation:
    """SM and memory channel counts of one slice."""

    sms: int
    channels: int

    def __post_init__(self) -> None:
        if self.sms < 0 or self.channels < 0:
            raise AllocationError(
                f"allocation cannot be negative: {self.sms} SMs, "
                f"{self.channels} channels"
            )

    def move(self, d_sms: int = 0, d_channels: int = 0) -> "ResourceAllocation":
        """A new allocation shifted by the given deltas."""
        return ResourceAllocation(self.sms + d_sms, self.channels + d_channels)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.sms}SM/{self.channels}MC"


@dataclass(frozen=True)
class GPUSlice:
    """A virtualized GPU slice bound to one application."""

    app_id: int
    allocation: ResourceAllocation

    @property
    def balanced(self) -> bool:
        """True when SM and channel shares are equal (2.5 SMs per channel
        is the baseline 80/32 proportion)."""
        return self.allocation.sms * 32 == self.allocation.channels * 80


class PartitionState:
    """The current partition of the physical GPU into slices."""

    def __init__(
        self,
        total_sms: int = 80,
        total_channels: int = 32,
        channel_group: int = 4,
        min_sms: int = 4,
        min_channels: int = 4,
    ) -> None:
        if total_sms <= 0 or total_channels <= 0:
            raise AllocationError("totals must be positive")
        if channel_group <= 0 or total_channels % channel_group != 0:
            raise AllocationError(
                f"total_channels {total_channels} not divisible by channel "
                f"group {channel_group}"
            )
        if min_channels % channel_group != 0:
            raise AllocationError(
                "min_channels must be a multiple of the channel group"
            )
        self.total_sms = total_sms
        self.total_channels = total_channels
        self.channel_group = channel_group
        self.min_sms = min_sms
        self.min_channels = min_channels
        self._allocations: Dict[int, ResourceAllocation] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def even(cls, app_ids: Iterable[int], **kwargs) -> "PartitionState":
        """Balanced partition: resources split equally (the BP baseline)."""
        state = cls(**kwargs)
        ids = list(app_ids)
        if not ids:
            raise AllocationError("need at least one application")
        sms = state.total_sms // len(ids)
        channels = state.total_channels // len(ids)
        channels -= channels % state.channel_group
        if sms < state.min_sms or channels < state.min_channels:
            raise AllocationError(
                f"{len(ids)} applications cannot each receive the minimum "
                f"allocation"
            )
        for app_id in ids:
            state.assign(app_id, ResourceAllocation(sms, channels))
        return state

    def assign(self, app_id: int, allocation: ResourceAllocation) -> None:
        """Set one slice's allocation, validating the global budget."""
        self._validate(allocation)
        proposed = dict(self._allocations)
        proposed[app_id] = allocation
        self._check_budget(proposed)
        self._allocations = proposed

    def assign_all(self, allocations: Mapping[int, ResourceAllocation]) -> None:
        """Replace the whole partition atomically."""
        for allocation in allocations.values():
            self._validate(allocation)
        self._check_budget(dict(allocations))
        self._allocations = dict(allocations)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def allocation(self, app_id: int) -> ResourceAllocation:
        try:
            return self._allocations[app_id]
        except KeyError:
            raise AllocationError(f"app {app_id} has no slice") from None

    def allocations(self) -> Dict[int, ResourceAllocation]:
        return dict(self._allocations)

    def slices(self) -> Dict[int, GPUSlice]:
        return {
            app_id: GPUSlice(app_id, alloc)
            for app_id, alloc in self._allocations.items()
        }

    @property
    def used_sms(self) -> int:
        return sum(a.sms for a in self._allocations.values())

    @property
    def used_channels(self) -> int:
        return sum(a.channels for a in self._allocations.values())

    @property
    def free_sms(self) -> int:
        return self.total_sms - self.used_sms

    @property
    def free_channels(self) -> int:
        return self.total_channels - self.used_channels

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, allocation: ResourceAllocation) -> None:
        if allocation.sms < self.min_sms:
            raise AllocationError(
                f"slice needs at least {self.min_sms} SMs, got {allocation.sms}"
            )
        if allocation.channels < self.min_channels:
            raise AllocationError(
                f"slice needs at least {self.min_channels} channels, got "
                f"{allocation.channels}"
            )
        if allocation.channels % self.channel_group != 0:
            raise AllocationError(
                f"channel count {allocation.channels} not a multiple of the "
                f"channel group {self.channel_group} (one channel per stack)"
            )

    def _check_budget(self, allocations: Dict[int, ResourceAllocation]) -> None:
        sms = sum(a.sms for a in allocations.values())
        channels = sum(a.channels for a in allocations.values())
        if sms > self.total_sms:
            raise AllocationError(f"{sms} SMs exceed the {self.total_sms} budget")
        if channels > self.total_channels:
            raise AllocationError(
                f"{channels} channels exceed the {self.total_channels} budget"
            )
