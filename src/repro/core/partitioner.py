"""The demand-aware resource distribution algorithm (paper Figure 5).

Starting from the current partition, each iteration:

(a) computes every application's degree of bandwidth demand (Equation 1
    demand over Equation 2 supply at its current allocation) and
    classifies it compute-bound (ratio < 1) or memory-bound (ratio >= 1);
(b) picks the *most* compute-bound application and gives it SMs while
    taking memory channels away, and picks the *most* memory-bound
    application and gives it channels while taking SMs away;
(c) stops when no resources can move — every transfer is guarded so the
    donor keeps meeting its own demand (a compute-bound app never gives
    away a channel it needs; a memory-bound app never gives away an SM it
    needs to saturate its channels).

No performance model is consulted: the algorithm only compares profiled
demand against supply, exactly the paper's "TaoTe Ching" redistribution.
An application whose working set exceeds its allocated memory capacity is
forced into the memory-bound class (Section 3.2's capacity extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.profiler import AppProfile
from repro.core.slices import PartitionState, ResourceAllocation
from repro.errors import AllocationError, ConfigError


@dataclass
class PartitionDecision:
    """Result of one run of the distribution algorithm."""

    allocations: Dict[int, ResourceAllocation]
    iterations: int
    moves: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Latency of the fixed-function hardware run, in GPU cycles.
    latency_cycles: int = 0

    def changed_from(self, previous: Mapping[int, ResourceAllocation]) -> bool:
        return dict(previous) != self.allocations


class DemandAwarePartitioner:
    """Iterative SM/channel redistribution driven by profiled demand."""

    def __init__(
        self,
        state: PartitionState,
        sm_step: int = 4,
        mc_step: Optional[int] = None,
        max_iterations: int = 20,
        memory_capacity_bytes: Optional[int] = None,
        gpu_config=None,
    ) -> None:
        """``gpu_config`` (a :class:`repro.gpu.config.GPUConfig`) supplies
        the hardware MLP constants for the SM-donation guard: a
        memory-bound donor keeps enough SMs that its achievable bandwidth
        (the MLP draw ceiling) still covers its supplied bandwidth — the
        paper's "as long as the SMs can fully utilize the memory
        bandwidth, its performance keeps unchanged even if the SM count
        decreases".  Pass None to disable the utilization guard (ablation).
        """
        if sm_step <= 0:
            raise ConfigError("sm_step must be positive")
        self.state = state
        self.sm_step = sm_step
        self.mc_step = mc_step if mc_step is not None else state.channel_group
        if self.mc_step % state.channel_group != 0:
            raise ConfigError(
                "mc_step must be a multiple of the channel group so every "
                "slice keeps one channel per stack"
            )
        if max_iterations <= 0:
            raise ConfigError("max_iterations must be positive")
        self.max_iterations = max_iterations
        #: Total GPU memory, for the capacity-pressure classification.
        self.memory_capacity_bytes = memory_capacity_bytes
        self.gpu_config = gpu_config

    # ------------------------------------------------------------------
    # Classification (part a)
    # ------------------------------------------------------------------
    def demand_ratio(self, profile: AppProfile,
                     allocation: ResourceAllocation) -> float:
        """Degree of bandwidth demand at an allocation; the capacity
        extension pushes over-committed apps into the memory-bound class."""
        ratio = profile.demand_supply_ratio(allocation.sms, allocation.channels)
        if self._capacity_pressure(profile, allocation):
            return max(ratio, 1.0 + 1e-6)
        return ratio

    def _capacity_pressure(self, profile: AppProfile,
                           allocation: ResourceAllocation) -> bool:
        if self.memory_capacity_bytes is None or profile.footprint_bytes <= 0:
            return False
        per_channel = self.memory_capacity_bytes / self.state.total_channels
        return profile.footprint_bytes > allocation.channels * per_channel

    # ------------------------------------------------------------------
    # The algorithm (parts a-c of Figure 5)
    # ------------------------------------------------------------------
    def compute(self, profiles: Mapping[int, AppProfile]) -> PartitionDecision:
        """Run the redistribution loop; returns the new partition."""
        if not profiles:
            raise AllocationError("no applications to partition")
        allocations = self.state.allocations()
        missing = set(profiles) - set(allocations)
        if missing:
            raise AllocationError(f"apps {sorted(missing)} have no slice")

        moves: List[Tuple[str, int, int]] = []
        iterations = 0
        for _ in range(self.max_iterations):
            ratios = {
                app_id: self.demand_ratio(profiles[app_id], allocations[app_id])
                for app_id in profiles
            }
            compute_bound = [a for a, r in ratios.items() if r < 1.0]
            memory_bound = [a for a, r in ratios.items() if r >= 1.0]
            if not compute_bound or not memory_bound:
                break
            cb = min(compute_bound, key=lambda a: ratios[a])   # most compute-bound
            mb = max(memory_bound, key=lambda a: ratios[a])    # most memory-bound

            moved_sm = self._try_move_sms(profiles, allocations, src=mb, dst=cb)
            moved_mc = self._try_move_channels(profiles, allocations, src=cb, dst=mb)
            iterations += 1
            if moved_sm:
                moves.append(("sm", mb, cb))
            if moved_mc:
                moves.append(("mc", cb, mb))
            if not moved_sm and not moved_mc:
                break

        return PartitionDecision(
            allocations=allocations, iterations=iterations, moves=moves
        )

    # ------------------------------------------------------------------
    # Guarded transfers (part b)
    # ------------------------------------------------------------------
    def _try_move_sms(self, profiles, allocations, src: int, dst: int) -> bool:
        """Move ``sm_step`` SMs from the memory-bound donor to the
        compute-bound receiver, if the donor can still saturate its
        channels afterwards."""
        donor = allocations[src]
        new_donor_sms = donor.sms - self.sm_step
        if new_donor_sms < self.state.min_sms:
            return False
        profile = profiles[src]
        supply = profile.supply(donor.channels)
        # The donor must stay memory-bound: remaining SMs still demand at
        # least the supplied bandwidth.
        if profile.demand(new_donor_sms) < supply:
            return False
        # ...and must still be able to *draw* that bandwidth: the MLP
        # ceiling of the remaining SMs has to cover the supply, or
        # removing the SM would cost performance (Section 3.1's key
        # message for memory-bound applications).
        if self.gpu_config is not None:
            draw = self.gpu_config.draw_bytes_per_cycle(
                new_donor_sms, donor.channels, profile.llc_hit_rate
            )
            if draw < supply:
                return False
        allocations[src] = donor.move(d_sms=-self.sm_step)
        allocations[dst] = allocations[dst].move(d_sms=self.sm_step)
        return True

    def _try_move_channels(self, profiles, allocations, src: int, dst: int) -> bool:
        """Move ``mc_step`` channels from the compute-bound donor to the
        memory-bound receiver, if the donor's demand stays satisfied."""
        donor = allocations[src]
        new_donor_channels = donor.channels - self.mc_step
        if new_donor_channels < self.state.min_channels:
            return False
        profile = profiles[src]
        # The donor must stay compute-bound with the reduced channels
        # (its SM count may have just grown, so use the updated value).
        if profile.demand(allocations[src].sms) > profile.supply(new_donor_channels):
            return False
        if self._capacity_pressure(
            profile, ResourceAllocation(donor.sms, new_donor_channels)
        ):
            return False
        allocations[src] = allocations[src].move(d_channels=-self.mc_step)
        allocations[dst] = allocations[dst].move(d_channels=self.mc_step)
        return True
