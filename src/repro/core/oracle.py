"""Oracle partitioning: the exhaustive upper bound.

The paper argues exhaustive offline exploration is "impractical and
inefficient" for a runtime mechanism (Section 3.1) — but it is the right
yardstick for evaluating how much the cheap demand-aware algorithm leaves
on the table.  :class:`OraclePartitioner` sweeps every feasible partition
under the performance model:

* two applications: the full (SMs x channel-groups) grid, exactly;
* three or more: coordinate descent from the even split (iterated
  single-resource transfers, taking the best-improving move each round),
  which is exact in practice for the monotone roofline model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.slices import PartitionState, ResourceAllocation
from repro.errors import AllocationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel
from repro.gpu.performance import PerformanceModel


@dataclass
class OracleResult:
    """Best partition found and its predicted STP."""

    allocations: Dict[int, ResourceAllocation]
    stp: float
    evaluations: int


class OraclePartitioner:
    """Exhaustive / coordinate-descent search over slice sizes."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 sm_step: int = 4, mc_step: int = 4,
                 min_sms: int = 4, min_channels: int = 4) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        if sm_step <= 0 or mc_step <= 0:
            raise AllocationError("steps must be positive")
        self.config = config
        self.perf = PerformanceModel(config)
        self.sm_step = sm_step
        self.mc_step = mc_step
        self.min_sms = min_sms
        self.min_channels = min_channels

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _alone(self, kernels: Mapping[int, Kernel]) -> Dict[int, float]:
        return {
            app_id: self.perf.throughput(
                kernel, self.config.num_sms, self.config.num_channels
            ).ipc
            for app_id, kernel in kernels.items()
        }

    def score(self, kernels: Mapping[int, Kernel],
              allocations: Mapping[int, ResourceAllocation],
              alone: Mapping[int, float] = None) -> float:
        """Predicted STP of a partition."""
        alone = alone if alone is not None else self._alone(kernels)
        total = 0.0
        for app_id, kernel in kernels.items():
            alloc = allocations[app_id]
            ipc = self.perf.throughput(kernel, alloc.sms, alloc.channels).ipc
            total += ipc / alone[app_id] if alone[app_id] > 0 else 0.0
        return total

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def best_partition(self, kernels: Mapping[int, Kernel]) -> OracleResult:
        if not kernels:
            raise AllocationError("no applications to partition")
        if len(kernels) == 2:
            return self._exhaustive_two_way(kernels)
        return self._coordinate_descent(kernels)

    def _exhaustive_two_way(self, kernels) -> OracleResult:
        a, b = sorted(kernels)
        alone = self._alone(kernels)
        total_sms = self.config.num_sms
        total_mcs = self.config.num_channels
        best = None
        evaluations = 0
        for sms in range(self.min_sms, total_sms - self.min_sms + 1, self.sm_step):
            for mcs in range(self.min_channels,
                             total_mcs - self.min_channels + 1, self.mc_step):
                allocations = {
                    a: ResourceAllocation(sms, mcs),
                    b: ResourceAllocation(total_sms - sms, total_mcs - mcs),
                }
                stp = self.score(kernels, allocations, alone)
                evaluations += 1
                if best is None or stp > best[0]:
                    best = (stp, allocations)
        return OracleResult(allocations=best[1], stp=best[0],
                            evaluations=evaluations)

    def _coordinate_descent(self, kernels) -> OracleResult:
        state = PartitionState.even(
            sorted(kernels),
            total_sms=self.config.num_sms,
            total_channels=self.config.num_channels,
            min_sms=self.min_sms,
            min_channels=self.min_channels,
        )
        allocations = state.allocations()
        alone = self._alone(kernels)
        evaluations = 1
        current = self.score(kernels, allocations, alone)
        improved = True
        while improved:
            improved = False
            best_move: Tuple[float, Dict[int, ResourceAllocation]] = (current, None)
            for donor in allocations:
                for receiver in allocations:
                    if donor == receiver:
                        continue
                    for d_sms, d_mcs in ((self.sm_step, 0), (0, self.mc_step)):
                        candidate = dict(allocations)
                        new_donor = candidate[donor].move(-d_sms, -d_mcs)
                        if (new_donor.sms < self.min_sms
                                or new_donor.channels < self.min_channels):
                            continue
                        candidate[donor] = new_donor
                        candidate[receiver] = candidate[receiver].move(d_sms, d_mcs)
                        stp = self.score(kernels, candidate, alone)
                        evaluations += 1
                        if stp > best_move[0] + 1e-9:
                            best_move = (stp, candidate)
            if best_move[1] is not None:
                current, allocations = best_move
                improved = True
        return OracleResult(allocations=allocations, stp=current,
                            evaluations=evaluations)
