"""UGPU core: dynamically constructed unbalanced GPU slices.

The paper's primary contribution (Sections 3-4 glue): epoch profiling
(:mod:`repro.core.profiler`), the demand-aware resource partitioning
algorithm (:mod:`repro.core.partitioner`), its hardware cost model
(:mod:`repro.core.hardware_cost`), SM drain/switch reallocation
(:mod:`repro.core.reallocation`), and the epoch-level system simulations
(:mod:`repro.core.system`, :mod:`repro.core.ugpu`) that the evaluation
benches run.
"""

from repro.core.slices import GPUSlice, PartitionState, ResourceAllocation
from repro.core.profiler import AppProfile, EpochProfiler
from repro.core.partitioner import DemandAwarePartitioner, PartitionDecision
from repro.core.hardware_cost import AlgorithmCostModel
from repro.core.oracle import OraclePartitioner, OracleResult
from repro.core.reallocation import SMPolicy, SMReallocator
from repro.core.system import (
    AppState,
    MultitaskSystem,
    OpenSystemResult,
    SystemResult,
)
from repro.core.ugpu import UGPUSystem
from repro.core.qos import QoSTarget

__all__ = [
    "ResourceAllocation",
    "GPUSlice",
    "PartitionState",
    "AppProfile",
    "EpochProfiler",
    "DemandAwarePartitioner",
    "PartitionDecision",
    "AlgorithmCostModel",
    "OraclePartitioner",
    "OracleResult",
    "SMPolicy",
    "SMReallocator",
    "AppState",
    "MultitaskSystem",
    "SystemResult",
    "OpenSystemResult",
    "UGPUSystem",
    "QoSTarget",
]
