"""Epoch profiler: the online counter pipeline of Section 3.3.

Per application, a :class:`~repro.gpu.counters.CounterBank` accumulates
instruction, LLC and DRAM events during an epoch; at the boundary the
profiler converts the snapshot into an :class:`AppProfile` carrying
exactly the quantities Equations 1-2 need: APKI, LLC hit rate and achieved
memory bandwidth.  Profiling is off the execution critical path, so it
adds no latency to the epoch itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.counters import CounterBank, CounterSnapshot
from repro.gpu.performance import SliceThroughput


@dataclass(frozen=True)
class AppProfile:
    """What the hardware learned about one application this epoch.

    ``bw_demand_per_sm`` is Equation 1 (bytes per cycle one stall-free SM
    would consume); ``bw_supply_per_mc`` is Equation 2 (bytes per cycle
    one memory channel plus its LLC slices can supply to this app).
    """

    app_id: int
    ipc_max_per_sm: float
    apki_llc: float
    llc_hit_rate: float
    bw_demand_per_sm: float
    bw_supply_per_mc: float
    footprint_bytes: int = 0

    def demand(self, sms: int) -> float:
        """Total bandwidth demand of a slice with ``sms`` SMs."""
        return self.bw_demand_per_sm * sms

    def supply(self, channels: int) -> float:
        """Total bandwidth supply of ``channels`` memory channels."""
        return self.bw_supply_per_mc * channels

    def demand_supply_ratio(self, sms: int, channels: int) -> float:
        """> 1 means the allocation leaves the app memory-bound."""
        supply = self.supply(channels)
        if supply <= 0:
            return float("inf") if self.demand(sms) > 0 else 0.0
        return self.demand(sms) / supply


class EpochProfiler:
    """Per-application hardware counters plus the Equation 1-2 math."""

    def __init__(self, config: Optional[GPUConfig] = None) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        self.config = config
        self._banks: Dict[int, CounterBank] = {}
        self._ipc_max: Dict[int, float] = {}
        self._footprints: Dict[int, int] = {}
        self._observe_memo: Dict[int, tuple] = {}
        self._profile_memo: Dict[int, Dict[tuple, AppProfile]] = {}

    def track(self, app_id: int, ipc_max_per_sm: float,
              footprint_bytes: int = 0) -> None:
        """Start profiling an application.

        ``ipc_max_per_sm`` comes from the SM's existing issue-slot
        counters (the stall-free issue rate); the LLC/DRAM counters are
        the new 16-bit ones.
        """
        if ipc_max_per_sm <= 0:
            raise ConfigError("ipc_max_per_sm must be positive")
        self._banks[app_id] = CounterBank()
        self._ipc_max[app_id] = ipc_max_per_sm
        self._footprints[app_id] = footprint_bytes
        self._observe_memo.pop(app_id, None)
        self._profile_memo.pop(app_id, None)

    def is_tracked(self, app_id: int) -> bool:
        return app_id in self._banks

    def bank(self, app_id: int) -> CounterBank:
        try:
            return self._banks[app_id]
        except KeyError:
            raise ConfigError(f"app {app_id} is not tracked") from None

    def observe_epoch(self, app_id: int, throughput: SliceThroughput,
                      effective_cycles: float) -> None:
        """Feed an epoch's activity into the counters.

        In hardware the counters increment per event; here the epoch model
        computes the aggregate event counts the throughput implies.
        """
        if effective_cycles < 0:
            raise ConfigError("effective_cycles must be non-negative")
        bank = self.bank(app_id)
        instructions = int(throughput.ipc * effective_cycles)
        # Recover the kernel's APKI from the throughput record: Equation 1
        # demand = sms * ipc_max * APKI/1000 * line and compute_roof =
        # sms * ipc_max, so demand/compute_roof = APKI/1000 * line.
        apki = (
            throughput.demand_bytes_per_cycle
            / max(1e-12, throughput.compute_roof)
            / self.config.llc_line_bytes
            * 1000.0
        )
        accesses = int(instructions * apki / 1000.0)
        hits = int(accesses * throughput.llc_hit_rate)
        bank.count_instructions(instructions)
        bank.count_llc_access(accesses - hits, hit=False)
        bank.count_llc_access(hits, hit=True)
        bank.count_dram_bytes(int(throughput.dram_bytes_per_cycle * effective_cycles))

    def observe_epoch_cached(self, app_id: int, throughput: SliceThroughput,
                             effective_cycles: float) -> None:
        """:meth:`observe_epoch` with the event counts memoized per app.

        The four counter increments are a pure function of
        ``(throughput, effective_cycles)``, and consecutive epochs of the
        same kernel on the same slice repeat them verbatim — the common
        case in the epoch loop.  ``SliceThroughput`` is frozen and shared
        through the performance-model memo, so object identity is a valid
        cache key.  Counter updates are identical to the uncached method.
        """
        memo = self._observe_memo.get(app_id)
        if (memo is not None and memo[0] is throughput
                and memo[1] == effective_cycles):
            # A memo entry implies the app is tracked (track() clears it).
            bank = self._banks[app_id]
            _, _, instructions, misses, hits, dram = memo
        else:
            if effective_cycles < 0:
                raise ConfigError("effective_cycles must be non-negative")
            bank = self.bank(app_id)
            instructions = int(throughput.ipc * effective_cycles)
            apki = (
                throughput.demand_bytes_per_cycle
                / max(1e-12, throughput.compute_roof)
                / self.config.llc_line_bytes
                * 1000.0
            )
            accesses = int(instructions * apki / 1000.0)
            hits = int(accesses * throughput.llc_hit_rate)
            misses = accesses - hits
            dram = int(throughput.dram_bytes_per_cycle * effective_cycles)
            self._observe_memo[app_id] = (
                throughput, effective_cycles, instructions, misses, hits, dram
            )
        bank.count_epoch_events(instructions, misses, hits, dram)

    def observe_and_profile(self, app_id: int, throughput: SliceThroughput,
                            effective_cycles: float) -> AppProfile:
        """:meth:`observe_epoch_cached` followed by :meth:`profile`, with
        the counter round-trip fused.

        When the bank is drained (all counters at zero — true at every
        boundary for policies that profile each epoch), feeding the
        epoch's events and immediately snapshotting leaves the counters
        at zero again; only the scaling residues and the tick quotients
        matter.  The fused path performs exactly that arithmetic — one
        ``divmod`` plus saturation clamp per narrow counter — without
        touching the :class:`HardwareCounter` objects, and feeds the
        resulting snapshot key straight into the profile memo.  Any other
        counter activity leaves the bank non-drained and falls through to
        the exact two-call pipeline.
        """
        bank = self._banks.get(app_id)
        if bank is None:
            bank = self.bank(app_id)  # raises the standard ConfigError
        if (bank.instructions._value | bank.llc_accesses._value
                | bank.llc_hits._value | bank.dram_bytes._value) == 0:
            memo = self._observe_memo.get(app_id)
            if (memo is not None and memo[0] is throughput
                    and memo[1] == effective_cycles):
                instructions, misses, hits, dram = memo[2:]
            else:
                if effective_cycles < 0:
                    raise ConfigError("effective_cycles must be non-negative")
                instructions = int(throughput.ipc * effective_cycles)
                apki = (
                    throughput.demand_bytes_per_cycle
                    / max(1e-12, throughput.compute_roof)
                    / self.config.llc_line_bytes
                    * 1000.0
                )
                accesses = int(instructions * apki / 1000.0)
                hits = int(accesses * throughput.llc_hit_rate)
                misses = accesses - hits
                dram = int(
                    throughput.dram_bytes_per_cycle * effective_cycles)
                self._observe_memo[app_id] = (
                    throughput, effective_cycles,
                    instructions, misses, hits, dram,
                )
            scale = bank.scale
            ticks_a, bank._access_residue = divmod(
                bank._access_residue + misses + hits, scale)
            cap = bank.llc_accesses._max
            if ticks_a > cap:
                ticks_a = cap
            ticks_h, bank._hit_residue = divmod(
                bank._hit_residue + hits, scale)
            cap = bank.llc_hits._max
            if ticks_h > cap:
                ticks_h = cap
            ticks_b, bank._byte_residue = divmod(
                bank._byte_residue + dram, scale)
            cap = bank.dram_bytes._max
            if ticks_b > cap:
                ticks_b = cap
            cap = bank.instructions._max
            key = (
                instructions if instructions <= cap else cap,
                ticks_a * scale, ticks_h * scale, ticks_b * scale,
            )
            return self._profile_from_key(app_id, key)
        self.observe_epoch_cached(app_id, throughput, effective_cycles)
        return self.profile(app_id)

    # ------------------------------------------------------------------
    # Equation 1 and 2
    # ------------------------------------------------------------------
    def bw_demand_per_sm(self, ipc_max_per_sm: float, apki_llc: float) -> float:
        """Equation 1, in bytes per GPU cycle per SM."""
        return ipc_max_per_sm * (apki_llc / 1000.0) * self.config.llc_line_bytes

    def bw_supply_per_mc(self, llc_hit_rate: float) -> float:
        """Equation 2, in bytes per GPU cycle per channel."""
        cfg = self.config
        llc_bw = (
            cfg.llc_slices_per_channel * cfg.llc_slice_bandwidth_bytes_per_cycle()
        )
        mem_bw = cfg.channel_bandwidth_bytes_per_cycle()
        miss = 1.0 - llc_hit_rate
        hit_part = llc_hit_rate * llc_bw
        miss_part = min(miss * llc_bw, mem_bw)
        return hit_part + miss_part

    #: Per-app :meth:`profile` memo bound; a steady-state app cycles
    #: through a handful of snapshot values, so far fewer entries live.
    PROFILE_MEMO_CAPACITY = 512

    def profile(self, app_id: int) -> AppProfile:
        """Epoch-boundary read: snapshot the counters and derive the
        Equation 1-2 quantities.

        The derived profile is a pure function of the snapshot values and
        the app's fixed parameters, so it is memoized on the raw counter
        reads.  Repeated snapshots return the *same* ``AppProfile``
        object (it is frozen), which also lets policies detect
        steady-state boundaries by identity.
        """
        # Inlined bank.snapshot(): the same read-and-reset values without
        # materializing a CounterSnapshot on the (per-epoch) hit path.
        bank = self._banks.get(app_id)
        if bank is None:
            bank = self.bank(app_id)  # raises the standard ConfigError
        scale = bank.scale
        instructions = bank.instructions.read_and_reset()
        accesses = bank.llc_accesses.read_and_reset() * scale
        hits = bank.llc_hits.read_and_reset() * scale
        dram = bank.dram_bytes.read_and_reset() * scale
        return self._profile_from_key(
            app_id, (instructions, accesses, hits, dram))

    def _profile_from_key(self, app_id: int, key: tuple) -> AppProfile:
        """Memoized profile construction from raw snapshot values."""
        memo = self._profile_memo.get(app_id)
        if memo is None:
            memo = self._profile_memo[app_id] = {}
        cached = memo.get(key)
        if cached is not None:
            return cached
        instructions, accesses, hits, _ = key
        ipc_max = self._ipc_max[app_id]
        # CounterSnapshot.apki_llc / llc_hit_rate, verbatim.
        apki = accesses * 1000.0 / instructions if instructions else 0.0
        hit = hits / accesses if accesses else 0.0
        profile = AppProfile(
            app_id=app_id,
            ipc_max_per_sm=ipc_max,
            apki_llc=apki,
            llc_hit_rate=hit,
            bw_demand_per_sm=self.bw_demand_per_sm(ipc_max, apki),
            bw_supply_per_mc=self.bw_supply_per_mc(hit),
            footprint_bytes=self._footprints.get(app_id, 0),
        )
        if len(memo) >= self.PROFILE_MEMO_CAPACITY:
            memo.clear()
        memo[key] = profile
        return profile

    def profile_from_snapshot(self, app_id: int, snapshot: CounterSnapshot,
                              ipc_max_per_sm: Optional[float] = None) -> AppProfile:
        """Build a profile from an externally captured snapshot (offline
        mode / tests)."""
        ipc_max = (
            ipc_max_per_sm
            if ipc_max_per_sm is not None
            else self._ipc_max.get(app_id, 64.0)
        )
        return AppProfile(
            app_id=app_id,
            ipc_max_per_sm=ipc_max,
            apki_llc=snapshot.apki_llc,
            llc_hit_rate=snapshot.llc_hit_rate,
            bw_demand_per_sm=self.bw_demand_per_sm(ipc_max, snapshot.apki_llc),
            bw_supply_per_mc=self.bw_supply_per_mc(snapshot.llc_hit_rate),
            footprint_bytes=self._footprints.get(app_id, 0),
        )
