"""Epoch profiler: the online counter pipeline of Section 3.3.

Per application, a :class:`~repro.gpu.counters.CounterBank` accumulates
instruction, LLC and DRAM events during an epoch; at the boundary the
profiler converts the snapshot into an :class:`AppProfile` carrying
exactly the quantities Equations 1-2 need: APKI, LLC hit rate and achieved
memory bandwidth.  Profiling is off the execution critical path, so it
adds no latency to the epoch itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.counters import CounterBank, CounterSnapshot
from repro.gpu.performance import SliceThroughput


@dataclass(frozen=True)
class AppProfile:
    """What the hardware learned about one application this epoch.

    ``bw_demand_per_sm`` is Equation 1 (bytes per cycle one stall-free SM
    would consume); ``bw_supply_per_mc`` is Equation 2 (bytes per cycle
    one memory channel plus its LLC slices can supply to this app).
    """

    app_id: int
    ipc_max_per_sm: float
    apki_llc: float
    llc_hit_rate: float
    bw_demand_per_sm: float
    bw_supply_per_mc: float
    footprint_bytes: int = 0

    def demand(self, sms: int) -> float:
        """Total bandwidth demand of a slice with ``sms`` SMs."""
        return self.bw_demand_per_sm * sms

    def supply(self, channels: int) -> float:
        """Total bandwidth supply of ``channels`` memory channels."""
        return self.bw_supply_per_mc * channels

    def demand_supply_ratio(self, sms: int, channels: int) -> float:
        """> 1 means the allocation leaves the app memory-bound."""
        supply = self.supply(channels)
        if supply <= 0:
            return float("inf") if self.demand(sms) > 0 else 0.0
        return self.demand(sms) / supply


class EpochProfiler:
    """Per-application hardware counters plus the Equation 1-2 math."""

    def __init__(self, config: Optional[GPUConfig] = None) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        self.config = config
        self._banks: Dict[int, CounterBank] = {}
        self._ipc_max: Dict[int, float] = {}
        self._footprints: Dict[int, int] = {}

    def track(self, app_id: int, ipc_max_per_sm: float,
              footprint_bytes: int = 0) -> None:
        """Start profiling an application.

        ``ipc_max_per_sm`` comes from the SM's existing issue-slot
        counters (the stall-free issue rate); the LLC/DRAM counters are
        the new 16-bit ones.
        """
        if ipc_max_per_sm <= 0:
            raise ConfigError("ipc_max_per_sm must be positive")
        self._banks[app_id] = CounterBank()
        self._ipc_max[app_id] = ipc_max_per_sm
        self._footprints[app_id] = footprint_bytes

    def is_tracked(self, app_id: int) -> bool:
        return app_id in self._banks

    def bank(self, app_id: int) -> CounterBank:
        try:
            return self._banks[app_id]
        except KeyError:
            raise ConfigError(f"app {app_id} is not tracked") from None

    def observe_epoch(self, app_id: int, throughput: SliceThroughput,
                      effective_cycles: float) -> None:
        """Feed an epoch's activity into the counters.

        In hardware the counters increment per event; here the epoch model
        computes the aggregate event counts the throughput implies.
        """
        if effective_cycles < 0:
            raise ConfigError("effective_cycles must be non-negative")
        bank = self.bank(app_id)
        instructions = int(throughput.ipc * effective_cycles)
        # Recover the kernel's APKI from the throughput record: Equation 1
        # demand = sms * ipc_max * APKI/1000 * line and compute_roof =
        # sms * ipc_max, so demand/compute_roof = APKI/1000 * line.
        apki = (
            throughput.demand_bytes_per_cycle
            / max(1e-12, throughput.compute_roof)
            / self.config.llc_line_bytes
            * 1000.0
        )
        accesses = int(instructions * apki / 1000.0)
        hits = int(accesses * throughput.llc_hit_rate)
        bank.count_instructions(instructions)
        bank.count_llc_access(accesses - hits, hit=False)
        bank.count_llc_access(hits, hit=True)
        bank.count_dram_bytes(int(throughput.dram_bytes_per_cycle * effective_cycles))

    # ------------------------------------------------------------------
    # Equation 1 and 2
    # ------------------------------------------------------------------
    def bw_demand_per_sm(self, ipc_max_per_sm: float, apki_llc: float) -> float:
        """Equation 1, in bytes per GPU cycle per SM."""
        return ipc_max_per_sm * (apki_llc / 1000.0) * self.config.llc_line_bytes

    def bw_supply_per_mc(self, llc_hit_rate: float) -> float:
        """Equation 2, in bytes per GPU cycle per channel."""
        cfg = self.config
        llc_bw = (
            cfg.llc_slices_per_channel * cfg.llc_slice_bandwidth_bytes_per_cycle()
        )
        mem_bw = cfg.channel_bandwidth_bytes_per_cycle()
        miss = 1.0 - llc_hit_rate
        hit_part = llc_hit_rate * llc_bw
        miss_part = min(miss * llc_bw, mem_bw)
        return hit_part + miss_part

    def profile(self, app_id: int) -> AppProfile:
        """Epoch-boundary read: snapshot the counters and derive the
        Equation 1-2 quantities."""
        snapshot = self.bank(app_id).snapshot()
        ipc_max = self._ipc_max[app_id]
        apki = snapshot.apki_llc
        hit = snapshot.llc_hit_rate
        return AppProfile(
            app_id=app_id,
            ipc_max_per_sm=ipc_max,
            apki_llc=apki,
            llc_hit_rate=hit,
            bw_demand_per_sm=self.bw_demand_per_sm(ipc_max, apki),
            bw_supply_per_mc=self.bw_supply_per_mc(hit),
            footprint_bytes=self._footprints.get(app_id, 0),
        )

    def profile_from_snapshot(self, app_id: int, snapshot: CounterSnapshot,
                              ipc_max_per_sm: Optional[float] = None) -> AppProfile:
        """Build a profile from an externally captured snapshot (offline
        mode / tests)."""
        ipc_max = (
            ipc_max_per_sm
            if ipc_max_per_sm is not None
            else self._ipc_max.get(app_id, 64.0)
        )
        return AppProfile(
            app_id=app_id,
            ipc_max_per_sm=ipc_max,
            apki_llc=snapshot.apki_llc,
            llc_hit_rate=snapshot.llc_hit_rate,
            bw_demand_per_sm=self.bw_demand_per_sm(ipc_max, snapshot.apki_llc),
            bw_supply_per_mc=self.bw_supply_per_mc(snapshot.llc_hit_rate),
            footprint_bytes=self._footprints.get(app_id, 0),
        )
