"""Epoch-level multitasking system simulation.

:class:`MultitaskSystem` is the shared runner: it advances co-executing
applications epoch by epoch, evaluating each on its slice with the
two-roofline performance model, charging any pending reallocation
penalties, and collecting STP/ANTT/energy at the end.  *What* the
partition looks like is delegated to a composed
:class:`~repro.policies.base.PartitionPolicy` (UGPU, BP variants, MPS,
CD-Search) through five hooks: ``initial_partition``,
``throughput_for``, ``on_epoch_end``, ``on_app_arrival`` and
``on_app_departure``.  The old inheritance spellings
(``UGPUSystem(apps)`` etc.) survive as deprecated shims around
``MultitaskSystem(apps, policy=...)``.

Reallocation penalties are expressed as (window_cycles, slowdown_factor)
charges: during the window the application loses ``factor`` of its
throughput.  This matches the paper's behaviour where applications keep
executing while SMs drain/switch and pages migrate (Section 6.3).

Closed versus open system
-------------------------
Without an arrival schedule the runner reproduces the paper's closed
evaluation: a fixed mix over the whole horizon, byte-for-byte identical
to the pre-refactor subclasses.  With ``arrivals=ArrivalSchedule(...)``
the runner becomes an open system: at each epoch boundary it retires
jobs that consumed their instruction budget (``departure``), queues new
jobs whose arrival cycle has passed (``arrival``), and grants slices to
queued jobs while residency is below ``max_slots`` (``admission``) —
departures run first so a same-boundary arrival can take the freed slot.
Each membership change flows through the policy hooks, which reuse the
:class:`PenaltyCharge` machinery so joins and leaves pay realistic
reallocation cost.  Open runs return an :class:`OpenSystemResult` with
occupancy-weighted interval STP/ANTT, queueing delay and makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.slices import PartitionState, ResourceAllocation
from repro.errors import ConfigError, SimulationError
from repro.fastpath import resolve_kernel_backend
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application
from repro.gpu.performance import PerformanceModel, SliceThroughput
from repro.metrics.energy import EnergyBreakdown, EnergyModel
from repro.metrics.multiprogram import (
    AppRun,
    IntervalRun,
    antt,
    interval_antt,
    interval_stp,
    makespan,
    mean_queueing_delay,
    stp,
)
from repro.sim.epoch import EpochResult, EpochRunner
from repro.vm.oversubscription import FaultOverheadModel
from repro.workloads.arrivals import ArrivalEvent, ArrivalSchedule


@dataclass
class PenaltyCharge:
    """A pending throughput loss: ``factor`` of IPC lost for ``window``
    cycles of the next epoch(s).

    ``counts_as_migration`` marks windows reported in Figure 12a's
    per-epoch reallocation occupancy (SM handover plus eager page moves);
    background/lazy trickle windows are excluded there.
    """

    window_cycles: float
    factor: float
    counts_as_migration: bool = True

    def __post_init__(self) -> None:
        if self.window_cycles < 0 or not 0.0 <= self.factor <= 1.0:
            raise ConfigError(
                f"invalid penalty: window={self.window_cycles}, factor={self.factor}"
            )

    @property
    def lost_cycles(self) -> float:
        return self.window_cycles * self.factor


@dataclass
class AppState:
    """Simulation state of one co-executing application.

    The lifecycle fields default to the closed-system values: arrived
    and admitted at cycle 0, no budget (resident until the horizon),
    never departed.
    """

    app: Application
    allocation: ResourceAllocation
    instructions: int = 0
    dram_bytes: float = 0.0
    penalties: List[PenaltyCharge] = field(default_factory=list)
    migrated_bytes: float = 0.0
    arrival_cycle: int = 0
    admit_cycle: int = 0
    depart_cycle: Optional[int] = None
    budget_instructions: Optional[int] = None

    @property
    def app_id(self) -> int:
        return self.app.app_id

    @property
    def retired_budget(self) -> bool:
        return (
            self.budget_instructions is not None
            and self.instructions >= self.budget_instructions
        )


@dataclass
class SystemResult:
    """Outcome of a closed-system multiprogram simulation."""

    policy: str
    mix_name: str
    runs: List[AppRun]
    epochs: List[EpochResult]
    total_cycles: int
    energy: Optional[EnergyBreakdown] = None
    repartitions: int = 0

    @property
    def stp(self) -> float:
        return stp(self.runs)

    @property
    def antt(self) -> float:
        return antt(self.runs)

    @property
    def min_np(self) -> float:
        if not self.runs:
            raise SimulationError(
                f"{self.policy}/{self.mix_name}: no application runs to take "
                "min_np over (every application departed before the horizon?); "
                "open-system runs report interval metrics on OpenSystemResult"
            )
        return min(run.normalized_progress for run in self.runs)

    def migration_fractions(self) -> List[float]:
        return [e.migration_fraction for e in self.epochs]


@dataclass
class OpenSystemResult:
    """Outcome of an open-system (arrival/departure) simulation.

    ``runs`` covers every job that was ever admitted — still-resident
    jobs have ``depart_cycle=None``.  ``arrivals`` counts jobs whose
    arrival cycle fell inside the simulated horizon; jobs that arrived
    but were never admitted are ``arrivals - admissions``.
    """

    policy: str
    mix_name: str
    runs: List[IntervalRun]
    epochs: List[EpochResult]
    total_cycles: int
    energy: Optional[EnergyBreakdown] = None
    repartitions: int = 0
    arrivals: int = 0
    admissions: int = 0
    departures: int = 0
    #: Attribution snapshot (git SHA, versions, config hash) — see
    #: :mod:`repro.telemetry.provenance`.
    provenance: Dict[str, str] = field(default_factory=dict)

    @property
    def stp(self) -> float:
        """Occupancy-weighted interval STP."""
        return interval_stp(self.runs, self.total_cycles)

    @property
    def antt(self) -> float:
        """Occupancy-weighted interval ANTT."""
        return interval_antt(self.runs, self.total_cycles)

    @property
    def makespan(self) -> int:
        return makespan(self.runs, self.total_cycles)

    @property
    def mean_queueing_delay(self) -> float:
        return mean_queueing_delay(self.runs)

    def migration_fractions(self) -> List[float]:
        return [e.migration_fraction for e in self.epochs]


#: Process-wide memo of solo-run IPCs: the Equation 3/4 denominator is a
#: pure function of (application content, config, horizon, epoch length,
#: memory size), and sweeps re-derive it for every policy sharing a mix.
_SOLO_IPC_CACHE: Dict[Tuple, float] = {}


def clear_solo_ipc_cache() -> None:
    """Drop the process-wide solo-IPC memo (for tests)."""
    _SOLO_IPC_CACHE.clear()


class MultitaskSystem:
    """The shared epoch-level runner; composes a
    :class:`~repro.policies.base.PartitionPolicy`."""

    policy_name = "base"

    def __init__(
        self,
        applications: Sequence[Application],
        config: Optional[GPUConfig] = None,
        epoch_cycles: int = 5_000_000,
        energy_model: Optional[EnergyModel] = None,
        total_memory_bytes: Optional[int] = None,
        tracer=None,
        policy=None,
        arrivals: Optional[ArrivalSchedule] = None,
        max_slots: Optional[int] = None,
        metrics=None,
        profiler=None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        """``total_memory_bytes`` enables memory-oversubscription modelling
        (paper Sections 3.2 and 5): each slice's capacity is proportional
        to its channel share, and applications whose footprint exceeds it
        pay far-fault overhead via
        :class:`repro.vm.oversubscription.FaultOverheadModel`.

        ``tracer`` (a :class:`repro.trace.TraceRecorder`) receives one
        ``epoch`` span per simulated epoch; policies add
        ``realloc``/``qos``/``migration`` records, and the open-system
        lifecycle ``arrival``/``admission``/``departure`` records, on top.

        ``policy`` is the composed :class:`PartitionPolicy` (default: the
        even static baseline).  ``arrivals`` switches the runner into
        open-system mode; ``max_slots`` caps concurrent residency
        (default: how many minimum slices the GPU can host).

        ``metrics`` (a :class:`repro.telemetry.MetricsRegistry`) receives
        the aggregate counterpart of the trace stream: epoch counters and
        duration histogram, migration-stall cycles, and — in open runs —
        arrival/admission/departure counters, the queueing-delay
        histogram and queue-depth gauges.  Like ``tracer``, it defaults
        to ``None`` and costs nothing when absent.

        ``profiler`` (a :class:`repro.profiling.PhaseProfiler`) measures
        host wall time per simulator phase: ``epoch`` with
        ``epoch.advance`` / ``epoch.policy`` / ``epoch.lifecycle``
        children, and ``run.solo_ipc`` for the Equation 3/4 denominator.
        Stored as :attr:`phase_profiler` — the plain ``profiler``
        attribute stays delegated to the composed policy's epoch-counter
        :class:`~repro.core.profiler.EpochProfiler` for backward
        compatibility.

        ``kernel_backend`` selects the hot-loop implementation:
        ``"scalar"`` (the pure-python golden oracle) or ``"numpy"`` (the
        batched fast path in :mod:`repro.fastpath`, byte-identical to the
        oracle).  ``None`` defers to :func:`resolve_kernel_backend`
        (process override, then ``REPRO_KERNEL_BACKEND``, then
        auto-detection)."""
        if policy is None:
            from repro.policies.base import PartitionPolicy

            policy = PartitionPolicy()
        else:
            # An explicit policy names the run; legacy subclasses keep
            # their class-level policy_name.
            self.policy_name = policy.policy_name
        self.policy = policy
        #: The batched epoch kernel (``None`` under the scalar backend).
        #: Must exist before any policy hook can touch the partition.
        self._fast = None
        self.kernel_backend = resolve_kernel_backend(kernel_backend)
        self._open = arrivals is not None and len(arrivals) > 0
        if not applications and not self._open:
            raise ConfigError("need at least one application")
        config = config if config is not None else GPUConfig()
        config.validate()
        self.config = config
        self.perf = PerformanceModel(config)
        self.epoch_cycles = epoch_cycles
        self.energy_model = energy_model
        self.total_memory_bytes = total_memory_bytes
        self.fault_model = (
            FaultOverheadModel(config) if total_memory_bytes is not None else None
        )
        self.tracer = tracer
        self.metrics = metrics
        self.phase_profiler = profiler
        if metrics is not None:
            # Resolve children once; the per-epoch hot path then touches
            # plain objects (or no-ops, under a NullRegistry).
            from repro.telemetry import names as _names

            self._m_epochs = _names.epochs_total(metrics)
            self._m_epoch_cycles = _names.epoch_cycles_total(metrics)
            self._m_epoch_hist = _names.epoch_duration_cycles(metrics)
            self._m_instructions = _names.instructions_total(metrics)
            self._m_stall = _names.migration_stall_cycles_total(metrics)
            self._m_arrivals = _names.open_arrivals_total(metrics)
            self._m_admissions = _names.open_admissions_total(metrics)
            self._m_departures = _names.open_departures_total(metrics)
            self._m_queue_delay = _names.open_queueing_delay_cycles(metrics)
            self._m_wait_depth = _names.open_wait_queue_depth(metrics)
            self._m_resident = _names.open_resident_jobs(metrics)
            self._m_stp = _names.policy_stp(metrics)
            self._m_antt = _names.policy_antt(metrics)
            _memo_lookups = _names.perf_memo_lookups_total(metrics)
            self._m_memo_hit = _memo_lookups.labels(outcome="hit")
            self._m_memo_miss = _memo_lookups.labels(outcome="miss")
            self._m_memo_entries = _names.perf_memo_entries(metrics)
        self._memo_hits_seen = 0
        self._memo_misses_seen = 0
        #: Cycle stamp for trace records emitted outside :meth:`_step`
        #: (e.g. QoS enforcement during construction happens at cycle 0).
        self._trace_now = 0
        self.repartitions = 0
        self.policy.bind(self)
        self.partition = self.initial_partition(applications)
        self.apps: Dict[int, AppState] = {}
        for app in applications:
            self.apps[app.app_id] = AppState(
                app=app, allocation=self.partition.allocation(app.app_id)
            )
        # Open-system state.
        self.arrivals = arrivals
        self._pending: List[ArrivalEvent] = list(arrivals) if arrivals else []
        self._wait_queue: List[ArrivalEvent] = []
        self.departed: Dict[int, AppState] = {}
        self._admitted_order: List[AppState] = list(self.apps.values())
        self.arrivals_seen = 0
        self.admissions = 0
        self.departures = 0
        if max_slots is None:
            # How many minimum slices (4 SMs / 4 channels, the
            # PartitionState floors) the physical GPU can host: 8 for the
            # Table 1 machine (32 channels / 4).
            max_slots = min(config.num_sms // 4, config.num_channels // 4)
        if max_slots < len(self.apps):
            raise ConfigError(
                f"max_slots={max_slots} below the {len(self.apps)} initial "
                "applications"
            )
        self.max_slots = max_slots
        self.policy.on_start()
        if self.kernel_backend == "numpy":
            from repro.fastpath.epoch import FastEpochKernel

            self._fast = FastEpochKernel(self)

    def __getattr__(self, name: str):
        # Compatibility: pre-refactor subclasses exposed policy state
        # (profiler, hysteresis, suppressed_repartitions, mode, ...) as
        # system attributes; delegate unknown public names to the policy.
        if name.startswith("_"):
            raise AttributeError(name)
        policy = self.__dict__.get("policy")
        if policy is not None and hasattr(policy, name):
            return getattr(policy, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # Hooks (delegated to the policy; legacy subclasses may override)
    # ------------------------------------------------------------------
    def initial_partition(self, applications: Sequence[Application]) -> PartitionState:
        return self.policy.initial_partition(applications)

    def throughput_for(self, state: AppState) -> SliceThroughput:
        return self.policy.throughput_for(state)

    def at_epoch_end(self, epoch_index: int, span: int) -> None:
        self.policy.on_epoch_end(epoch_index, span)

    def slice_throughput(self, state: AppState) -> SliceThroughput:
        """Evaluate the app's current kernel on its isolated slice (the
        default policy behaviour; policies layer contention or profiling
        on top)."""
        return self.perf.throughput(
            state.app.current_kernel,
            state.allocation.sms,
            state.allocation.channels,
        )

    def capacity_factor(self, state: AppState, throughput: SliceThroughput) -> float:
        """Far-fault throughput factor when oversubscription is modelled."""
        if self.fault_model is None:
            return 1.0
        capacity = self.fault_model.capacity_for_channels(
            state.allocation.channels, self.total_memory_bytes
        )
        charge = self.fault_model.charge(
            state.app.footprint_bytes, capacity, throughput.dram_bytes_per_cycle
        )
        return charge.throughput_factor

    # ------------------------------------------------------------------
    # Epoch step
    # ------------------------------------------------------------------
    def _step(self, epoch_index: int, span: int) -> EpochResult:
        if self._fast is not None:
            return self._fast.step(epoch_index, span)
        return self._step_scalar(epoch_index, span)

    def _step_scalar(self, epoch_index: int, span: int) -> EpochResult:
        """The golden-oracle epoch step (``kernel_backend="scalar"``)."""
        prof = self.phase_profiler
        if prof is not None:
            prof.begin("epoch")
            prof.begin("epoch.advance")
        instructions: Dict[int, int] = {}
        migration_cycles = 0.0
        for state in self.apps.values():
            throughput = self.throughput_for(state)
            lost = 0.0
            consumed: List[PenaltyCharge] = []
            for charge in state.penalties:
                take_window = min(charge.window_cycles, span)
                lost += take_window * charge.factor
                if charge.counts_as_migration:
                    migration_cycles = max(migration_cycles, take_window)
                if charge.window_cycles > span:
                    consumed.append(
                        PenaltyCharge(
                            charge.window_cycles - span,
                            charge.factor,
                            charge.counts_as_migration,
                        )
                    )
            state.penalties = consumed
            effective = max(0.0, span - lost)
            capacity_factor = self.capacity_factor(state, throughput)
            retired = int(throughput.ipc * effective * capacity_factor)
            state.app.advance(retired)
            state.instructions += retired
            state.dram_bytes += throughput.dram_bytes_per_cycle * effective
            instructions[state.app_id] = retired

        result = EpochResult(
            index=epoch_index,
            start_cycle=epoch_index * self.epoch_cycles,
            end_cycle=epoch_index * self.epoch_cycles + span,
            instructions=instructions,
            migration_cycles=int(migration_cycles),
            repartitioned=False,
        )
        before = self.repartitions
        self._trace_now = result.end_cycle
        if prof is not None:
            prof.end("epoch.advance")
            prof.begin("epoch.policy")
        if self.apps:
            self.at_epoch_end(epoch_index, span)
        if prof is not None:
            prof.end("epoch.policy")
        if self._open:
            if prof is not None:
                with prof.span("epoch.lifecycle"):
                    self._process_boundary(result.end_cycle)
            else:
                self._process_boundary(result.end_cycle)
        result.repartitioned = self.repartitions > before
        # Snapshot the (possibly just-updated) partition for dynamics
        # analysis: {app_id: (sms, channels)} at the end of this epoch.
        result.detail["allocations"] = {
            app_id: (state.allocation.sms, state.allocation.channels)
            for app_id, state in self.apps.items()
        }
        if self.tracer is not None:
            self.tracer.emit(
                "epoch", f"epoch[{epoch_index}]",
                time=result.start_cycle, duration=span,
                instructions=sum(instructions.values()),
                migration_cycles=result.migration_cycles,
                repartitioned=result.repartitioned,
            )
        if self.metrics is not None:
            self._epoch_metrics(result, span, instructions)
        if prof is not None:
            prof.end("epoch")
        return result

    def _epoch_metrics(self, result: EpochResult, span: int,
                       instructions: Dict[int, int]) -> None:
        """Per-epoch metrics updates (shared by both kernel backends)."""
        self._m_epochs.inc()
        self._m_epoch_cycles.inc(span)
        self._m_epoch_hist.observe(span)
        self._m_instructions.inc(sum(instructions.values()))
        self._m_stall.inc(result.migration_cycles)
        perf = self.perf
        if perf.memo_hits != self._memo_hits_seen:
            self._m_memo_hit.inc(perf.memo_hits - self._memo_hits_seen)
            self._memo_hits_seen = perf.memo_hits
        if perf.memo_misses != self._memo_misses_seen:
            self._m_memo_miss.inc(perf.memo_misses - self._memo_misses_seen)
            self._memo_misses_seen = perf.memo_misses
        self._m_memo_entries.set(perf.memo_size)
        self.metrics.epoch_boundary(result.index, result.end_cycle)

    # ------------------------------------------------------------------
    # Open-system lifecycle
    # ------------------------------------------------------------------
    def _process_boundary(self, now: int) -> None:
        """Departures, then arrivals, then admissions — in that order, so
        a slot freed this boundary serves a job queued this boundary."""
        for app_id in [a for a, s in self.apps.items() if s.retired_budget]:
            state = self.apps.pop(app_id)
            state.depart_cycle = now
            state.penalties = []
            self.departed[app_id] = state
            self.departures += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "departure", state.app.name, time=now,
                    app_id=app_id, instructions=state.instructions,
                    resident_cycles=now - state.admit_cycle,
                )
            if self.metrics is not None:
                self._m_departures.inc()
            self.policy.on_app_departure(state)
        while self._pending and self._pending[0].cycle <= now:
            event = self._pending.pop(0)
            self._wait_queue.append(event)
            self.arrivals_seen += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "arrival", event.app.name, time=event.cycle,
                    app_id=event.app.app_id,
                )
            if self.metrics is not None:
                self._m_arrivals.inc()
        while self._wait_queue and len(self.apps) < self.max_slots:
            event = self._wait_queue.pop(0)
            state = AppState(
                app=event.app,
                allocation=ResourceAllocation(0, 0),
                arrival_cycle=event.cycle,
                admit_cycle=now,
                budget_instructions=event.budget_instructions,
            )
            self.apps[event.app.app_id] = state
            self._admitted_order.append(state)
            self.admissions += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "admission", event.app.name, time=now,
                    app_id=event.app.app_id,
                    queueing_delay=now - event.cycle,
                )
            if self.metrics is not None:
                self._m_admissions.inc()
                self._m_queue_delay.observe(now - event.cycle)
            self.policy.on_app_arrival(state)
        if self.metrics is not None:
            self._m_wait_depth.set(len(self._wait_queue))
            self._m_resident.set(len(self.apps))

    def _drained(self, _result: EpochResult) -> bool:
        """Early exit for open runs: nothing resident, queued or pending."""
        return not self.apps and not self._wait_queue and not self._pending

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(self, total_cycles: int = 25_000_000,
            mix_name: Optional[str] = None):
        """Simulate for ``total_cycles`` GPU cycles (the paper's horizon
        is 25M).  Closed runs (no arrival schedule) return a
        :class:`SystemResult`; open runs return an
        :class:`OpenSystemResult`."""
        if self._open:
            return self._run_open(total_cycles, mix_name)
        runner = EpochRunner(self.epoch_cycles)
        if self._fast is not None:
            epochs = self._fast.drive(runner, total_cycles)
        else:
            epochs = runner.run(self._step_scalar, total_cycles)
        alone = self.alone_ipcs(total_cycles)
        runs = []
        for state in self.apps.values():
            ipc = state.instructions / total_cycles
            runs.append(
                AppRun(
                    app_id=state.app_id,
                    name=state.app.name,
                    ipc=ipc,
                    ipc_alone=alone[state.app_id],
                )
            )
        result = SystemResult(
            policy=self.policy_name,
            mix_name=mix_name or "_".join(s.app.name for s in self.apps.values()),
            runs=runs,
            epochs=epochs,
            total_cycles=total_cycles,
            energy=self._energy(total_cycles, self.apps.values()),
            repartitions=self.repartitions,
        )
        self._finish_metrics(result)
        return result

    def _run_open(self, total_cycles: int,
                  mix_name: Optional[str]) -> OpenSystemResult:
        runner = EpochRunner(self.epoch_cycles)
        step = self._fast.step if self._fast is not None else self._step_scalar
        epochs = runner.run(step, total_cycles, stop_when=self._drained)
        runs = []
        for state in self._admitted_order:
            if state.depart_cycle is None and state.admit_cycle >= total_cycles:
                # Admitted exactly at the horizon: never executed.
                continue
            interval = (
                (state.depart_cycle if state.depart_cycle is not None
                 else total_cycles) - state.admit_cycle
            )
            runs.append(
                IntervalRun(
                    app_id=state.app_id,
                    name=state.app.name,
                    instructions=state.instructions,
                    ipc_alone=self._solo_ipc(state.app, interval),
                    arrival_cycle=state.arrival_cycle,
                    admit_cycle=state.admit_cycle,
                    depart_cycle=state.depart_cycle,
                )
            )
        all_states = list(self._admitted_order)
        from repro.telemetry.provenance import collect_provenance

        result = OpenSystemResult(
            policy=self.policy_name,
            mix_name=mix_name or "open",
            runs=runs,
            epochs=epochs,
            total_cycles=total_cycles,
            energy=self._energy(total_cycles, all_states),
            repartitions=self.repartitions,
            arrivals=self.arrivals_seen,
            admissions=self.admissions,
            departures=self.departures,
            provenance=collect_provenance(
                self.config, policy=self.policy_name,
                kernel_backend=self.kernel_backend,
            ),
        )
        self._finish_metrics(result)
        return result

    def _finish_metrics(self, result) -> None:
        """End-of-run summary gauges (per-policy STP/ANTT, trace drops)."""
        if self.metrics is None:
            return
        dropped = getattr(self.tracer, "dropped", None)
        if dropped is not None:
            from repro.telemetry import names as _names

            _names.trace_dropped_events(self.metrics).set(dropped)
        # Flush memo-lookup deltas accrued outside the epoch loop (the
        # solo-IPC denominators run after the last epoch).
        perf = self.perf
        if perf.memo_hits != self._memo_hits_seen:
            self._m_memo_hit.inc(perf.memo_hits - self._memo_hits_seen)
            self._memo_hits_seen = perf.memo_hits
        if perf.memo_misses != self._memo_misses_seen:
            self._m_memo_miss.inc(perf.memo_misses - self._memo_misses_seen)
            self._memo_misses_seen = perf.memo_misses
        self._m_memo_entries.set(perf.memo_size)
        if not result.runs:
            return
        self._m_stp.labels(policy=self.policy_name).set(result.stp)
        self._m_antt.labels(policy=self.policy_name).set(result.antt)

    def _energy(self, total_cycles: int,
                states) -> Optional[EnergyBreakdown]:
        if self.energy_model is None:
            return None
        total_instr = sum(s.instructions for s in states)
        total_dram = sum(s.dram_bytes for s in states)
        total_migrated = sum(s.migrated_bytes for s in states)
        return self.energy_model.energy(
            cycles=total_cycles,
            instructions=total_instr,
            dram_bytes=total_dram,
            migrated_bytes=total_migrated,
        )

    # ------------------------------------------------------------------
    # Solo-run denominator (memoized per process)
    # ------------------------------------------------------------------
    def alone_ipcs(self, total_cycles: int) -> Dict[int, float]:
        """IPC of each application running alone on the whole GPU for the
        same horizon (the Equation 3/4 denominator)."""
        return {
            state.app_id: self._solo_ipc(state.app, total_cycles)
            for state in self.apps.values()
        }

    @staticmethod
    def _curve_key(curve) -> Optional[Tuple]:
        if curve is None:
            return None
        return (
            curve.reference_capacity, curve.reference_hit_rate,
            curve.working_set, curve.peak_hit_rate, curve.alpha,
        )

    def _solo_cache_key(self, app: Application, total_cycles: int) -> Tuple:
        kernels = tuple(
            (
                k.name, k.ipc_per_sm, k.apki_llc, k.llc_hit_rate,
                k.footprint_bytes, k.instructions,
                self._curve_key(k.hit_curve),
            )
            for k in app.kernels
        )
        return (
            app.name, kernels, repr(self.config), total_cycles,
            self.epoch_cycles, self.total_memory_bytes,
        )

    def _solo_ipc(self, app: Application, total_cycles: int) -> float:
        key = self._solo_cache_key(app, total_cycles)
        cached = _SOLO_IPC_CACHE.get(key)
        if cached is not None:
            return cached
        prof = self.phase_profiler
        if prof is not None:
            prof.begin("run.solo_ipc")
        if self._fast is not None:
            instructions = self._fast.solo_instructions(app, total_cycles)
        else:
            solo = app.clone()
            instructions = 0
            elapsed = 0
            while elapsed < total_cycles:
                span = min(self.epoch_cycles, total_cycles - elapsed)
                t = self.perf.throughput(
                    solo.current_kernel, self.config.num_sms,
                    self.config.num_channels
                )
                factor = 1.0
                if self.fault_model is not None:
                    charge = self.fault_model.charge(
                        solo.footprint_bytes,
                        float(self.total_memory_bytes),
                        t.dram_bytes_per_cycle,
                    )
                    factor = charge.throughput_factor
                retired = int(t.ipc * span * factor)
                solo.advance(retired)
                instructions += retired
                elapsed += span
        if instructions <= 0:
            raise SimulationError(
                f"{app.name}: solo run retired no instructions"
            )
        ipc = instructions / total_cycles
        _SOLO_IPC_CACHE[key] = ipc
        if prof is not None:
            prof.end("run.solo_ipc")
        return ipc

    # ------------------------------------------------------------------
    # Helpers for policies
    # ------------------------------------------------------------------
    def set_allocation(self, app_id: int,
                       allocation: ResourceAllocation) -> ResourceAllocation:
        """Update one slice; returns the previous allocation."""
        previous = self.apps[app_id].allocation
        self.partition.assign(app_id, allocation)
        self.apps[app_id].allocation = allocation
        if self._fast is not None:
            self._fast.partition_changed()
        return previous

    def apply_partition(self, allocations: Mapping[int, ResourceAllocation]) -> None:
        self.partition.assign_all(dict(allocations))
        for app_id, allocation in allocations.items():
            self.apps[app_id].allocation = allocation
        if self._fast is not None:
            self._fast.partition_changed()

    def replace_partition(self, partition: PartitionState) -> None:
        """Swap in a freshly constructed partition (MPS membership
        changes rebuild their nominal budget); slices must already be
        assigned for every resident."""
        self.partition = partition
        for app_id, state in self.apps.items():
            state.allocation = partition.allocation(app_id)
        if self._fast is not None:
            self._fast.partition_changed()

    def add_penalty(self, app_id: int, window_cycles: float, factor: float,
                    counts_as_migration: bool = True) -> None:
        if window_cycles > 0 and factor > 0:
            self.apps[app_id].penalties.append(
                PenaltyCharge(window_cycles, factor, counts_as_migration)
            )
