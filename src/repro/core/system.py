"""Epoch-level multitasking system simulation.

:class:`MultitaskSystem` is the shared runner: it advances co-executing
applications epoch by epoch, evaluating each on its slice with the
two-roofline performance model, charging any pending reallocation
penalties, and collecting STP/ANTT/energy at the end.  Policies (UGPU, BP
variants, MPS, CD-Search) subclass it and override two hooks:

* :meth:`throughput_for` — how an application performs on its resources
  (MPS overrides this to model shared-memory contention);
* :meth:`at_epoch_end` — what happens at the profiling boundary (UGPU and
  CD-Search repartition here; static baselines do nothing).

Reallocation penalties are expressed as (window_cycles, slowdown_factor)
charges: during the window the application loses ``factor`` of its
throughput.  This matches the paper's behaviour where applications keep
executing while SMs drain/switch and pages migrate (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.slices import PartitionState, ResourceAllocation
from repro.errors import ConfigError, SimulationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application
from repro.gpu.performance import PerformanceModel, SliceThroughput
from repro.metrics.energy import EnergyBreakdown, EnergyModel
from repro.metrics.multiprogram import AppRun, antt, stp
from repro.sim.epoch import EpochResult, EpochRunner
from repro.vm.oversubscription import FaultOverheadModel


@dataclass
class PenaltyCharge:
    """A pending throughput loss: ``factor`` of IPC lost for ``window``
    cycles of the next epoch(s).

    ``counts_as_migration`` marks windows reported in Figure 12a's
    per-epoch reallocation occupancy (SM handover plus eager page moves);
    background/lazy trickle windows are excluded there.
    """

    window_cycles: float
    factor: float
    counts_as_migration: bool = True

    def __post_init__(self) -> None:
        if self.window_cycles < 0 or not 0.0 <= self.factor <= 1.0:
            raise ConfigError(
                f"invalid penalty: window={self.window_cycles}, factor={self.factor}"
            )

    @property
    def lost_cycles(self) -> float:
        return self.window_cycles * self.factor


@dataclass
class AppState:
    """Simulation state of one co-executing application."""

    app: Application
    allocation: ResourceAllocation
    instructions: int = 0
    dram_bytes: float = 0.0
    penalties: List[PenaltyCharge] = field(default_factory=list)
    migrated_bytes: float = 0.0

    @property
    def app_id(self) -> int:
        return self.app.app_id


@dataclass
class SystemResult:
    """Outcome of a multiprogram simulation."""

    policy: str
    mix_name: str
    runs: List[AppRun]
    epochs: List[EpochResult]
    total_cycles: int
    energy: Optional[EnergyBreakdown] = None
    repartitions: int = 0

    @property
    def stp(self) -> float:
        return stp(self.runs)

    @property
    def antt(self) -> float:
        return antt(self.runs)

    @property
    def min_np(self) -> float:
        return min(run.normalized_progress for run in self.runs)

    def migration_fractions(self) -> List[float]:
        return [e.migration_fraction for e in self.epochs]


class MultitaskSystem:
    """Base epoch-level runner; see module docstring for the hooks."""

    policy_name = "base"

    def __init__(
        self,
        applications: Sequence[Application],
        config: GPUConfig = GPUConfig(),
        epoch_cycles: int = 5_000_000,
        energy_model: Optional[EnergyModel] = None,
        total_memory_bytes: Optional[int] = None,
        tracer=None,
    ) -> None:
        """``total_memory_bytes`` enables memory-oversubscription modelling
        (paper Sections 3.2 and 5): each slice's capacity is proportional
        to its channel share, and applications whose footprint exceeds it
        pay far-fault overhead via
        :class:`repro.vm.oversubscription.FaultOverheadModel`.

        ``tracer`` (a :class:`repro.trace.TraceRecorder`) receives one
        ``epoch`` span per simulated epoch; policy subclasses add
        ``realloc``/``qos``/``migration`` records on top."""
        if not applications:
            raise ConfigError("need at least one application")
        config.validate()
        self.config = config
        self.perf = PerformanceModel(config)
        self.epoch_cycles = epoch_cycles
        self.energy_model = energy_model
        self.total_memory_bytes = total_memory_bytes
        self.fault_model = (
            FaultOverheadModel(config) if total_memory_bytes is not None else None
        )
        self.tracer = tracer
        #: Cycle stamp for trace records emitted outside :meth:`_step`
        #: (e.g. QoS enforcement during construction happens at cycle 0).
        self._trace_now = 0
        self.partition = self.initial_partition(applications)
        self.apps: Dict[int, AppState] = {}
        for app in applications:
            self.apps[app.app_id] = AppState(
                app=app, allocation=self.partition.allocation(app.app_id)
            )
        self.repartitions = 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def initial_partition(self, applications: Sequence[Application]) -> PartitionState:
        """Default: the balanced partition (BP)."""
        return PartitionState.even(
            [a.app_id for a in applications],
            total_sms=self.config.num_sms,
            total_channels=self.config.num_channels,
        )

    def throughput_for(self, state: AppState) -> SliceThroughput:
        """Evaluate the app's current kernel on its isolated slice."""
        return self.perf.throughput(
            state.app.current_kernel,
            state.allocation.sms,
            state.allocation.channels,
        )

    def at_epoch_end(self, epoch_index: int, span: int) -> None:
        """Policy hook: static baselines do nothing."""

    def capacity_factor(self, state: AppState, throughput: SliceThroughput) -> float:
        """Far-fault throughput factor when oversubscription is modelled."""
        if self.fault_model is None:
            return 1.0
        capacity = self.fault_model.capacity_for_channels(
            state.allocation.channels, self.total_memory_bytes
        )
        charge = self.fault_model.charge(
            state.app.footprint_bytes, capacity, throughput.dram_bytes_per_cycle
        )
        return charge.throughput_factor

    # ------------------------------------------------------------------
    # Epoch step
    # ------------------------------------------------------------------
    def _step(self, epoch_index: int, span: int) -> EpochResult:
        instructions: Dict[int, int] = {}
        migration_cycles = 0.0
        for state in self.apps.values():
            throughput = self.throughput_for(state)
            lost = 0.0
            consumed: List[PenaltyCharge] = []
            for charge in state.penalties:
                take_window = min(charge.window_cycles, span)
                lost += take_window * charge.factor
                if charge.counts_as_migration:
                    migration_cycles = max(migration_cycles, take_window)
                if charge.window_cycles > span:
                    consumed.append(
                        PenaltyCharge(
                            charge.window_cycles - span,
                            charge.factor,
                            charge.counts_as_migration,
                        )
                    )
            state.penalties = consumed
            effective = max(0.0, span - lost)
            capacity_factor = self.capacity_factor(state, throughput)
            retired = int(throughput.ipc * effective * capacity_factor)
            state.app.advance(retired)
            state.instructions += retired
            state.dram_bytes += throughput.dram_bytes_per_cycle * effective
            instructions[state.app_id] = retired

        result = EpochResult(
            index=epoch_index,
            start_cycle=epoch_index * self.epoch_cycles,
            end_cycle=epoch_index * self.epoch_cycles + span,
            instructions=instructions,
            migration_cycles=int(migration_cycles),
            repartitioned=False,
        )
        before = self.repartitions
        self._trace_now = result.end_cycle
        self.at_epoch_end(epoch_index, span)
        result.repartitioned = self.repartitions > before
        # Snapshot the (possibly just-updated) partition for dynamics
        # analysis: {app_id: (sms, channels)} at the end of this epoch.
        result.detail["allocations"] = {
            app_id: (state.allocation.sms, state.allocation.channels)
            for app_id, state in self.apps.items()
        }
        if self.tracer is not None:
            self.tracer.emit(
                "epoch", f"epoch[{epoch_index}]",
                time=result.start_cycle, duration=span,
                instructions=sum(instructions.values()),
                migration_cycles=result.migration_cycles,
                repartitioned=result.repartitioned,
            )
        return result

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(self, total_cycles: int = 25_000_000,
            mix_name: Optional[str] = None) -> SystemResult:
        """Simulate the mix for ``total_cycles`` GPU cycles (the paper's
        horizon is 25M) and report STP/ANTT against solo runs."""
        runner = EpochRunner(self.epoch_cycles)
        epochs = runner.run(self._step, total_cycles)
        alone = self.alone_ipcs(total_cycles)
        runs = []
        for state in self.apps.values():
            ipc = state.instructions / total_cycles
            runs.append(
                AppRun(
                    app_id=state.app_id,
                    name=state.app.name,
                    ipc=ipc,
                    ipc_alone=alone[state.app_id],
                )
            )
        energy = None
        if self.energy_model is not None:
            total_instr = sum(s.instructions for s in self.apps.values())
            total_dram = sum(s.dram_bytes for s in self.apps.values())
            total_migrated = sum(s.migrated_bytes for s in self.apps.values())
            energy = self.energy_model.energy(
                cycles=total_cycles,
                instructions=total_instr,
                dram_bytes=total_dram,
                migrated_bytes=total_migrated,
            )
        return SystemResult(
            policy=self.policy_name,
            mix_name=mix_name or "_".join(s.app.name for s in self.apps.values()),
            runs=runs,
            epochs=epochs,
            total_cycles=total_cycles,
            energy=energy,
            repartitions=self.repartitions,
        )

    def alone_ipcs(self, total_cycles: int) -> Dict[int, float]:
        """IPC of each application running alone on the whole GPU for the
        same horizon (the Equation 3/4 denominator)."""
        results: Dict[int, float] = {}
        for state in self.apps.values():
            solo = state.app.clone()
            instructions = 0
            elapsed = 0
            while elapsed < total_cycles:
                span = min(self.epoch_cycles, total_cycles - elapsed)
                t = self.perf.throughput(
                    solo.current_kernel, self.config.num_sms, self.config.num_channels
                )
                factor = 1.0
                if self.fault_model is not None:
                    charge = self.fault_model.charge(
                        solo.footprint_bytes,
                        float(self.total_memory_bytes),
                        t.dram_bytes_per_cycle,
                    )
                    factor = charge.throughput_factor
                retired = int(t.ipc * span * factor)
                solo.advance(retired)
                instructions += retired
                elapsed += span
            if instructions <= 0:
                raise SimulationError(
                    f"{state.app.name}: solo run retired no instructions"
                )
            results[state.app_id] = instructions / total_cycles
        return results

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def set_allocation(self, app_id: int,
                       allocation: ResourceAllocation) -> ResourceAllocation:
        """Update one slice; returns the previous allocation."""
        previous = self.apps[app_id].allocation
        self.partition.assign(app_id, allocation)
        self.apps[app_id].allocation = allocation
        return previous

    def apply_partition(self, allocations: Mapping[int, ResourceAllocation]) -> None:
        self.partition.assign_all(dict(allocations))
        for app_id, allocation in allocations.items():
            self.apps[app_id].allocation = allocation

    def add_penalty(self, app_id: int, window_cycles: float, factor: float,
                    counts_as_migration: bool = True) -> None:
        if window_cycles > 0 and factor > 0:
            self.apps[app_id].penalties.append(
                PenaltyCharge(window_cycles, factor, counts_as_migration)
            )
