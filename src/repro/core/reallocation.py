"""SM reallocation: adaptive draining vs. context switching.

Following Section 3.3 (and Chimera/CD-Search lineage), UGPU reassigns SMs
between slices with one of two mechanisms:

* **draining** — let the thread blocks already resident on the SM finish,
  then hand the SM over.  Cheap when blocks are short; latency is the
  expected residual block time.
* **switching** — save the resident blocks' context (registers + shared
  memory) to DRAM and restore it later.  Latency is the context volume
  over the available memory bandwidth, independent of block length.

UGPU drains when a block completes within the epoch and switches
otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig


class SMPolicy(enum.Enum):
    """How an SM changes hands."""

    DRAIN = "drain"
    SWITCH = "switch"


@dataclass(frozen=True)
class SMReallocationCharge:
    """Cost of moving a set of SMs to another slice."""

    policy: SMPolicy
    num_sms: int
    cycles: float           #: wall-clock latency until the SMs are handed over
    dram_bytes: int         #: context traffic (zero for draining)


class SMReallocator:
    """Pick and cost the SM handover mechanism."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 context_bytes_per_sm: int = None,
                 switch_fixed_cycles: float = 30_000.0) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        self.config = config
        #: Register file + shared memory per SM (the switched context).
        self.context_bytes_per_sm = (
            context_bytes_per_sm
            if context_bytes_per_sm is not None
            else config.registers_per_sm * 4 + config.shared_memory_per_sm
        )
        if self.context_bytes_per_sm <= 0:
            raise ConfigError("context size must be positive")
        #: Fixed per-switch cost: pipeline drain, barrier synchronization
        #: and cache/TLB refill after the preemption — the reason draining
        #: wins for short thread blocks despite the copy being fast.
        if switch_fixed_cycles < 0:
            raise ConfigError("switch_fixed_cycles must be non-negative")
        self.switch_fixed_cycles = switch_fixed_cycles

    def choose_policy(self, tb_duration_cycles: float,
                      epoch_cycles: int) -> SMPolicy:
        """Drain if a thread block completes within the epoch, else
        switch (the paper's adaptive rule)."""
        if tb_duration_cycles < 0 or epoch_cycles <= 0:
            raise ConfigError("durations must be positive")
        return (
            SMPolicy.DRAIN
            if tb_duration_cycles <= epoch_cycles
            else SMPolicy.SWITCH
        )

    def drain_cost(self, num_sms: int, tb_duration_cycles: float) -> SMReallocationCharge:
        """Expected residual block time: half a block on average."""
        self._check_sms(num_sms)
        return SMReallocationCharge(
            policy=SMPolicy.DRAIN,
            num_sms=num_sms,
            cycles=tb_duration_cycles / 2.0,
            dram_bytes=0,
        )

    def switch_cost(self, num_sms: int, channels_available: int) -> SMReallocationCharge:
        """Context save + restore through the slice's memory channels."""
        self._check_sms(num_sms)
        if channels_available <= 0:
            raise ConfigError("switching needs at least one memory channel")
        total_bytes = 2 * num_sms * self.context_bytes_per_sm  # save + restore
        bandwidth = (
            channels_available * self.config.channel_bandwidth_bytes_per_cycle()
        )
        return SMReallocationCharge(
            policy=SMPolicy.SWITCH,
            num_sms=num_sms,
            cycles=self.switch_fixed_cycles + total_bytes / bandwidth,
            dram_bytes=total_bytes,
        )

    def cost(self, num_sms: int, tb_duration_cycles: float, epoch_cycles: int,
             channels_available: int) -> SMReallocationCharge:
        """Adaptive policy choice plus its cost."""
        if num_sms == 0:
            return SMReallocationCharge(SMPolicy.DRAIN, 0, 0.0, 0)
        policy = self.choose_policy(tb_duration_cycles, epoch_cycles)
        if policy is SMPolicy.DRAIN:
            return self.drain_cost(num_sms, tb_duration_cycles)
        return self.switch_cost(num_sms, channels_available)

    @staticmethod
    def _check_sms(num_sms: int) -> None:
        if num_sms < 0:
            raise ConfigError("num_sms must be non-negative")
