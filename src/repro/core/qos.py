"""QoS support (paper Section 6.7).

A :class:`QoSTarget` names a high-priority application and a normalized
progress (NP) floor — the paper uses 0.75.  Because UGPU slices are fully
isolated, QoS enforcement is purely a partitioning constraint: the
high-priority slice must be large enough that its estimated NP clears the
target; the partitioner then maximizes throughput with the remaining
resources.

The NP estimate uses only profiled quantities (Equations 1-2 plus the MLP
ceiling), never a full performance model, keeping the paper's
"no complex model" property.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import AppProfile
from repro.core.slices import ResourceAllocation
from repro.errors import QoSError
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class QoSTarget:
    """NP floor for one high-priority application."""

    app_id: int
    target_np: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.target_np <= 1.0:
            raise QoSError(
                f"target NP must be in (0, 1], got {self.target_np}"
            )


def estimated_ipc(profile: AppProfile, allocation: ResourceAllocation,
                  config: GPUConfig) -> float:
    """Counter-based IPC estimate of an application on a slice.

    min(compute roofline, bandwidth roofline, MLP roofline), all computed
    from the profile's Equation 1-2 quantities — the same arithmetic the
    fixed-function unit already performs.
    """
    bytes_per_instr = (profile.apki_llc / 1000.0) * config.llc_line_bytes
    compute = allocation.sms * profile.ipc_max_per_sm
    if bytes_per_instr <= 0:
        return compute
    bandwidth = profile.supply(allocation.channels) / bytes_per_instr
    draw = config.draw_bytes_per_cycle(
        allocation.sms, allocation.channels, profile.llc_hit_rate
    )
    return min(compute, bandwidth, draw / bytes_per_instr)


def estimated_np(profile: AppProfile, allocation: ResourceAllocation,
                 config: GPUConfig) -> float:
    """Estimated normalized progress relative to the whole GPU."""
    alone = estimated_ipc(
        profile,
        ResourceAllocation(config.num_sms, config.num_channels),
        config,
    )
    if alone <= 0:
        return 0.0
    return estimated_ipc(profile, allocation, config) / alone


def meets_target(profile: AppProfile, allocation: ResourceAllocation,
                 config: GPUConfig, target: QoSTarget) -> bool:
    """Does the slice clear the QoS floor?"""
    return estimated_np(profile, allocation, config) >= target.target_np
