"""Deprecated shim: ``UGPUSystem`` as a subclass spelling.

The UGPU algorithm now lives in :class:`repro.policies.ugpu.UGPUPolicy`
and composes with the shared :class:`~repro.core.system.MultitaskSystem`
runner::

    MultitaskSystem(apps, policy=UGPUPolicy(mode=..., qos=...))

``UGPUSystem(apps, ...)`` keeps working for one release: it builds the
policy from the same keyword arguments, emits a
:class:`DeprecationWarning`, and delegates everything else to the
runner (policy attributes such as ``profiler``/``hysteresis`` remain
reachable through the runner's attribute fallback).

``offline=True`` models UGPU-offline: the partition is computed from the
static Table 2 profiles once and never revisited (the paper's ideal).
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.core.qos import QoSTarget
from repro.core.system import MultitaskSystem
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application
from repro.metrics.energy import EnergyModel
from repro.pagemove.cost import MigrationMode
from repro.policies.ugpu import UGPUPolicy


class UGPUSystem(MultitaskSystem):
    """Dynamically constructed unbalanced GPU slices (deprecated spelling)."""

    policy_name = "UGPU"

    def __init__(
        self,
        applications: Sequence[Application],
        config: Optional[GPUConfig] = None,
        epoch_cycles: int = 5_000_000,
        mode: MigrationMode = MigrationMode.PPMM,
        offline: bool = False,
        qos: Optional[QoSTarget] = None,
        energy_model: Optional[EnergyModel] = None,
        total_memory_bytes: Optional[int] = None,
        sm_step: int = 4,
        lazy_overlap: float = 0.5,
        lazy_fraction: float = 0.5,
        tb_duration_cycles: float = 200_000.0,
        migration_budget_cycles: Optional[float] = None,
        flush_window_cycles: float = 800_000.0,
        flush_factor: float = 0.35,
        hysteresis: float = 0.0,
        tracer=None,
    ) -> None:
        warnings.warn(
            "UGPUSystem is deprecated; use "
            "MultitaskSystem(apps, policy=UGPUPolicy(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        policy = UGPUPolicy(
            mode=mode,
            offline=offline,
            qos=qos,
            sm_step=sm_step,
            lazy_overlap=lazy_overlap,
            lazy_fraction=lazy_fraction,
            tb_duration_cycles=tb_duration_cycles,
            migration_budget_cycles=migration_budget_cycles,
            flush_window_cycles=flush_window_cycles,
            flush_factor=flush_factor,
            hysteresis=hysteresis,
        )
        super().__init__(
            applications,
            config,
            epoch_cycles,
            energy_model,
            total_memory_bytes=total_memory_bytes,
            tracer=tracer,
            policy=policy,
        )
