"""System throughput (STP) and average normalized turnaround time (ANTT).

Paper Equations 3 and 4::

    STP  = sum_i IPC_i / IPC_i^alone            (higher is better)
    ANTT = (1/n) sum_i IPC_i^alone / IPC_i      (lower is better)

``IPC_i^alone`` is benchmark *i* running alone on the full GPU; ``IPC_i``
is its IPC during multitasking.

The closed-system forms assume every application shares one horizon.  In
an *open* system (jobs arrive, queue, and depart) each application is
resident only for its own interval, so :class:`IntervalRun` carries the
lifecycle cycles and the interval metrics weight each app by its
occupancy ``present_cycles / horizon``:

    STP_interval  = sum_i (present_i / horizon) * NP_i
    ANTT_interval = sum_i present_i * slowdown_i / sum_i present_i

With every app resident for the whole horizon these reduce exactly to
Equations 3 and 4.  :func:`mean_queueing_delay` and :func:`makespan`
summarize the scheduling side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class AppRun:
    """One application's measured throughput in a multiprogram run."""

    app_id: int
    name: str
    ipc: float
    ipc_alone: float

    def __post_init__(self) -> None:
        if self.ipc < 0 or self.ipc_alone <= 0:
            raise ConfigError(
                f"{self.name}: ipc must be >= 0 and ipc_alone > 0 "
                f"(got {self.ipc}, {self.ipc_alone})"
            )

    @property
    def normalized_progress(self) -> float:
        """NP = IPC / IPC_alone (the paper's QoS metric)."""
        return self.ipc / self.ipc_alone

    @property
    def slowdown(self) -> float:
        """IPC_alone / IPC; infinite for a stalled application."""
        if self.ipc == 0:
            return float("inf")
        return self.ipc_alone / self.ipc


def normalized_progress(ipc: float, ipc_alone: float) -> float:
    """NP of one application."""
    if ipc_alone <= 0:
        raise ConfigError("ipc_alone must be positive")
    if ipc < 0:
        raise ConfigError("ipc must be non-negative")
    return ipc / ipc_alone


def stp(runs: Sequence[AppRun]) -> float:
    """System throughput (Equation 3); ``n`` for a perfect system."""
    if not runs:
        raise ConfigError("stp needs at least one application run")
    return sum(run.normalized_progress for run in runs)


def antt(runs: Sequence[AppRun]) -> float:
    """Average normalized turnaround time (Equation 4); 1.0 is ideal."""
    if not runs:
        raise ConfigError("antt needs at least one application run")
    return sum(run.slowdown for run in runs) / len(runs)


def summarize(runs: Sequence[AppRun]) -> Dict[str, float]:
    """Both metrics plus the per-app minimum NP (QoS floor)."""
    return {
        "stp": stp(runs),
        "antt": antt(runs),
        "min_np": min(run.normalized_progress for run in runs),
    }


# ----------------------------------------------------------------------
# Open-system interval metrics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IntervalRun:
    """One application's measured progress over its residency interval.

    ``arrival_cycle`` is when the job entered the system,
    ``admit_cycle`` when it received a slice (the difference is queueing
    delay), and ``depart_cycle`` when it retired its budget — ``None``
    for a job still resident at the horizon.  ``instructions`` counts
    retirement between admission and departure; ``ipc_alone`` is the
    solo-run rate over the same interval length.
    """

    app_id: int
    name: str
    instructions: int
    ipc_alone: float
    arrival_cycle: int = 0
    admit_cycle: int = 0
    depart_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ConfigError(f"{self.name}: instructions must be >= 0")
        if self.ipc_alone <= 0:
            raise ConfigError(f"{self.name}: ipc_alone must be positive")
        if self.admit_cycle < self.arrival_cycle:
            raise ConfigError(
                f"{self.name}: admitted at {self.admit_cycle} before "
                f"arriving at {self.arrival_cycle}"
            )
        if self.depart_cycle is not None and self.depart_cycle <= self.admit_cycle:
            raise ConfigError(
                f"{self.name}: departure {self.depart_cycle} must follow "
                f"admission {self.admit_cycle}"
            )

    @property
    def queueing_delay(self) -> int:
        """Cycles spent waiting for a free slot."""
        return self.admit_cycle - self.arrival_cycle

    def end_cycle(self, horizon: int) -> int:
        return self.depart_cycle if self.depart_cycle is not None else horizon

    def present_cycles(self, horizon: int) -> int:
        """Cycles the app held a slice (its residency interval)."""
        return max(0, self.end_cycle(horizon) - self.admit_cycle)

    def ipc(self, horizon: int) -> float:
        present = self.present_cycles(horizon)
        if present <= 0:
            return 0.0
        return self.instructions / present

    def normalized_progress(self, horizon: int) -> float:
        return self.ipc(horizon) / self.ipc_alone

    def slowdown(self, horizon: int) -> float:
        ipc = self.ipc(horizon)
        if ipc == 0:
            return float("inf")
        return self.ipc_alone / ipc


def _check_interval_args(runs: Sequence[IntervalRun], horizon: int) -> None:
    if not runs:
        raise ConfigError("interval metrics need at least one application run")
    if horizon <= 0:
        raise ConfigError("horizon must be positive")


def interval_stp(runs: Sequence[IntervalRun], horizon: int) -> float:
    """Occupancy-weighted STP: each app contributes its NP scaled by the
    fraction of the horizon it was resident.  Reduces to Equation 3 when
    every app is resident for the whole horizon."""
    _check_interval_args(runs, horizon)
    return sum(
        run.present_cycles(horizon) / horizon * run.normalized_progress(horizon)
        for run in runs
    )


def interval_antt(runs: Sequence[IntervalRun], horizon: int) -> float:
    """Occupancy-weighted mean slowdown.  Reduces to Equation 4 when
    every app shares the horizon."""
    _check_interval_args(runs, horizon)
    total_present = sum(run.present_cycles(horizon) for run in runs)
    if total_present <= 0:
        raise ConfigError("no application was ever resident")
    return (
        sum(
            run.present_cycles(horizon) * run.slowdown(horizon)
            for run in runs
        )
        / total_present
    )


def mean_queueing_delay(runs: Sequence[IntervalRun]) -> float:
    """Average cycles between arrival and admission."""
    if not runs:
        raise ConfigError("mean_queueing_delay needs at least one run")
    return sum(run.queueing_delay for run in runs) / len(runs)


def makespan(runs: Sequence[IntervalRun], horizon: int) -> int:
    """Cycle by which every submitted job has departed (the horizon for
    jobs still resident)."""
    _check_interval_args(runs, horizon)
    return max(run.end_cycle(horizon) for run in runs)
