"""System throughput (STP) and average normalized turnaround time (ANTT).

Paper Equations 3 and 4::

    STP  = sum_i IPC_i / IPC_i^alone            (higher is better)
    ANTT = (1/n) sum_i IPC_i^alone / IPC_i      (lower is better)

``IPC_i^alone`` is benchmark *i* running alone on the full GPU; ``IPC_i``
is its IPC during multitasking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class AppRun:
    """One application's measured throughput in a multiprogram run."""

    app_id: int
    name: str
    ipc: float
    ipc_alone: float

    def __post_init__(self) -> None:
        if self.ipc < 0 or self.ipc_alone <= 0:
            raise ConfigError(
                f"{self.name}: ipc must be >= 0 and ipc_alone > 0 "
                f"(got {self.ipc}, {self.ipc_alone})"
            )

    @property
    def normalized_progress(self) -> float:
        """NP = IPC / IPC_alone (the paper's QoS metric)."""
        return self.ipc / self.ipc_alone

    @property
    def slowdown(self) -> float:
        """IPC_alone / IPC; infinite for a stalled application."""
        if self.ipc == 0:
            return float("inf")
        return self.ipc_alone / self.ipc


def normalized_progress(ipc: float, ipc_alone: float) -> float:
    """NP of one application."""
    if ipc_alone <= 0:
        raise ConfigError("ipc_alone must be positive")
    if ipc < 0:
        raise ConfigError("ipc must be non-negative")
    return ipc / ipc_alone


def stp(runs: Sequence[AppRun]) -> float:
    """System throughput (Equation 3); ``n`` for a perfect system."""
    if not runs:
        raise ConfigError("stp needs at least one application run")
    return sum(run.normalized_progress for run in runs)


def antt(runs: Sequence[AppRun]) -> float:
    """Average normalized turnaround time (Equation 4); 1.0 is ideal."""
    if not runs:
        raise ConfigError("antt needs at least one application run")
    return sum(run.slowdown for run in runs) / len(runs)


def summarize(runs: Sequence[AppRun]) -> Dict[str, float]:
    """Both metrics plus the per-app minimum NP (QoS floor)."""
    return {
        "stp": stp(runs),
        "antt": antt(runs),
        "min_np": min(run.normalized_progress for run in runs),
    }
