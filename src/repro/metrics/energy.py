"""Parametric GPU energy model (Figure 12b substitution).

The paper uses GPUWattch with an HBM power model; it reports only
aggregates: the core occupies 88.3% and the HBM 11.6% of system energy on
average for the heterogeneous workloads (up to 30.3% HBM for
memory-heavy mixes); migration raises memory energy by 38% on average,
but UGPU's speedup cuts static/constant energy for a net 7.1% saving.

We model energy per epoch as::

    E_core = P_core_static * T + e_instr * instructions
    E_mem  = P_mem_static * T + e_byte * (demand_bytes + migrated_bytes)

with constants calibrated so a BP run of the average heterogeneous mix
lands on the paper's 88.3/11.6 split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run, in joules."""

    core_static: float
    core_dynamic: float
    mem_static: float
    mem_dynamic: float
    migration: float

    @property
    def core(self) -> float:
        return self.core_static + self.core_dynamic

    @property
    def memory(self) -> float:
        return self.mem_static + self.mem_dynamic + self.migration

    @property
    def total(self) -> float:
        return self.core + self.memory

    @property
    def memory_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.memory / self.total


class EnergyModel:
    """Joule accounting for core and HBM.

    Default constants approximate a 300 W-class 22 nm GPU: ~95 W of core
    static power, ~9 pJ per thread instruction, ~18 W of HBM background
    power and ~14 pJ/B of DRAM access energy (HBM2-era figures), tuned so
    the Figure 12b aggregate splits emerge for the evaluated mixes.
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        core_static_watts: float = 95.0,
        core_pj_per_instruction: float = 9.0,
        mem_static_watts: float = 18.0,
        mem_pj_per_byte: float = 14.0,
        migration_pj_per_byte: float = 9.0,
    ) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        for name, value in (
            ("core_static_watts", core_static_watts),
            ("core_pj_per_instruction", core_pj_per_instruction),
            ("mem_static_watts", mem_static_watts),
            ("mem_pj_per_byte", mem_pj_per_byte),
            ("migration_pj_per_byte", migration_pj_per_byte),
        ):
            if value < 0:
                raise ConfigError(f"{name} must be non-negative")
        self.config = config
        self.core_static_watts = core_static_watts
        self.core_pj_per_instruction = core_pj_per_instruction
        self.mem_static_watts = mem_static_watts
        self.mem_pj_per_byte = mem_pj_per_byte
        self.migration_pj_per_byte = migration_pj_per_byte

    def energy(
        self,
        cycles: float,
        instructions: float,
        dram_bytes: float,
        migrated_bytes: float = 0.0,
    ) -> EnergyBreakdown:
        """Energy of a run of ``cycles`` GPU cycles.

        ``migrated_bytes`` covers PageMove/software page-migration traffic;
        it is charged at the (cheaper) in-stack transfer energy plus the
        standard DRAM access energy on both the read and write side.
        """
        if min(cycles, instructions, dram_bytes, migrated_bytes) < 0:
            raise ConfigError("energy inputs must be non-negative")
        seconds = cycles / self.config.sm_freq_hz
        pj = 1e-12
        migration = migrated_bytes * (
            2 * self.mem_pj_per_byte + self.migration_pj_per_byte
        ) * pj
        return EnergyBreakdown(
            core_static=self.core_static_watts * seconds,
            core_dynamic=instructions * self.core_pj_per_instruction * pj,
            mem_static=self.mem_static_watts * seconds,
            mem_dynamic=dram_bytes * self.mem_pj_per_byte * pj,
            migration=migration,
        )
