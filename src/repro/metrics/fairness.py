"""Fairness metrics for multiprogram execution.

Complements STP/ANTT with the fairness measures common in the
multitasking-GPU literature the paper builds on (Jog et al., Wang et
al.): the min/max normalized-progress ratio and the harmonic mean of
normalized progress (which balances throughput against fairness).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError
from repro.metrics.multiprogram import AppRun


def fairness_index(runs: Sequence[AppRun]) -> float:
    """min(NP) / max(NP): 1.0 is perfectly fair, 0 is starvation."""
    if not runs:
        raise ConfigError("fairness needs at least one application run")
    progress = [run.normalized_progress for run in runs]
    top = max(progress)
    if top == 0:
        return 1.0  # everyone equally stalled
    return min(progress) / top


def harmonic_mean_np(runs: Sequence[AppRun]) -> float:
    """Harmonic mean of normalized progress (throughput-fairness blend).

    Equals ``n / sum(slowdown_i)`` — the reciprocal of ANTT — so it
    rewards policies that help the worst-off application.
    """
    if not runs:
        raise ConfigError("harmonic mean needs at least one application run")
    total = 0.0
    for run in runs:
        np_value = run.normalized_progress
        if np_value == 0:
            return 0.0
        total += 1.0 / np_value
    return len(runs) / total


def jains_index(runs: Sequence[AppRun]) -> float:
    """Jain's fairness index over normalized progress: in [1/n, 1]."""
    if not runs:
        raise ConfigError("Jain's index needs at least one application run")
    progress = [run.normalized_progress for run in runs]
    total = sum(progress)
    squares = sum(p * p for p in progress)
    if squares == 0:
        return 1.0
    return (total * total) / (len(progress) * squares)
