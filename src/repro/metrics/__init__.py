"""Multi-program performance metrics and the energy model.

STP and ANTT follow Eyerman & Eeckhout's definitions (paper Equations 3-4);
the energy model reproduces the aggregate splits of Figure 12b.
"""

from repro.metrics.multiprogram import (
    AppRun,
    IntervalRun,
    antt,
    interval_antt,
    interval_stp,
    makespan,
    mean_queueing_delay,
    normalized_progress,
    stp,
    summarize,
)
from repro.metrics.energy import EnergyBreakdown, EnergyModel
from repro.metrics.fairness import fairness_index, harmonic_mean_np, jains_index

__all__ = [
    "AppRun",
    "IntervalRun",
    "stp",
    "antt",
    "interval_stp",
    "interval_antt",
    "mean_queueing_delay",
    "makespan",
    "normalized_progress",
    "summarize",
    "EnergyModel",
    "EnergyBreakdown",
    "fairness_index",
    "harmonic_mean_np",
    "jains_index",
]
