"""Report rendering for inspected bundles and bundle diffs.

Two output forms per object:

* deterministic plain text — stable line order and phrasing, safe to
  grep in CI (``result divergence: none`` / ``meta-count divergence:
  none`` are load-bearing strings for the inspect smoke);
* a self-contained single-file HTML report — inline CSS, no external
  assets or scripts, so the file can be archived as a CI artifact and
  opened anywhere.

All numbers that reach the text report are formatted with fixed
precision so identical inputs render byte-identically.
"""

from __future__ import annotations

import html
from typing import List, Optional

from repro.inspect.analyze import Finding
from repro.inspect.diff import BundleDiff
from repro.inspect.model import RunModel

_SEVERITY_MARK = {"warning": "!", "info": "-"}


# ----------------------------------------------------------------------
# Inspect: text
# ----------------------------------------------------------------------
def render_text(model: RunModel, findings: List[Finding],
                top: int = 10) -> str:
    """The ``repro inspect`` report."""
    lines = [
        f"run bundle: {model.path}",
        f"  command:        {model.command}",
        f"  run_id:         {model.run_id}",
        f"  kernel_backend: {model.kernel_backend}",
        f"  dropped_events: {model.dropped_events}",
    ]
    counts = model.manifest.get("counts", {})
    if counts:
        lines.append("  counts: " + ", ".join(
            f"{key}={counts[key]}" for key in sorted(counts)
        ))
    shards = model.shard_ids()
    workers = model.workers()
    if shards:
        shown = ", ".join(shards[:8]) + (" ..." if len(shards) > 8 else "")
        lines.append(f"  shards ({len(shards)}): {shown}")
    if workers:
        lines.append(f"  workers: {len(workers)}")
    lines.append("")
    lines.append(f"findings ({len(findings)}):")
    if not findings:
        lines.append("  (none)")
    for finding in findings:
        mark = _SEVERITY_MARK.get(finding.severity, "-")
        lines.append(
            f"  {mark} [{finding.severity}/{finding.category}] "
            f"{finding.title}"
        )
        lines.append(f"      {finding.detail}")
    if model.profile is not None:
        lines.append("")
        lines.append(f"hot phases (top {top}):")
        for row in model.profile.format_table(top=top).splitlines():
            lines.append("  " + row)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Inspect: HTML
# ----------------------------------------------------------------------
_HTML_HEAD = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font: 14px/1.5 -apple-system, "Segoe UI", sans-serif;
       margin: 2em auto; max-width: 60em; color: #1a1a2e; }}
h1 {{ font-size: 1.4em; }} h2 {{ font-size: 1.1em; margin-top: 1.6em; }}
table {{ border-collapse: collapse; width: 100%; margin: .6em 0; }}
th, td {{ border: 1px solid #cfd4dc; padding: .3em .6em;
          text-align: left; font-size: 13px; }}
th {{ background: #eef1f5; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
.warning {{ background: #fdf0ee; }}
.info {{ background: #f2f7f2; }}
code {{ background: #f4f4f6; padding: 0 .25em; }}
.meta {{ color: #555; font-size: 13px; }}
</style></head><body>
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _meta_rows(model: RunModel) -> str:
    rows = [
        ("command", model.command),
        ("run_id", model.run_id),
        ("kernel_backend", model.kernel_backend),
        ("dropped_events", model.dropped_events),
    ]
    counts = model.manifest.get("counts", {})
    for key in sorted(counts):
        rows.append((f"count:{key}", counts[key]))
    cells = "".join(
        f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>" for k, v in rows
    )
    return f"<table>{cells}</table>"


def render_html(model: RunModel, findings: List[Finding],
                top: int = 15) -> str:
    """Self-contained single-file HTML version of the inspect report."""
    parts = [_HTML_HEAD.format(title=f"repro inspect: {_esc(model.path)}")]
    parts.append(f"<h1>Run bundle <code>{_esc(model.path)}</code></h1>")
    parts.append(_meta_rows(model))
    parts.append(f"<h2>Findings ({len(findings)})</h2>")
    if findings:
        rows = "".join(
            f'<tr class="{_esc(f.severity)}"><td>{_esc(f.severity)}</td>'
            f"<td>{_esc(f.category)}</td><td>{_esc(f.title)}</td>"
            f"<td>{_esc(f.detail)}</td></tr>"
            for f in findings
        )
        parts.append(
            "<table><tr><th>severity</th><th>category</th><th>finding"
            f"</th><th>detail</th></tr>{rows}</table>"
        )
    else:
        parts.append('<p class="meta">No findings.</p>')
    if model.profile is not None:
        parts.append(f"<h2>Hot phases (top {top})</h2>")
        total = model.profile.total_seconds()
        rows = "".join(
            f"<tr><td><code>{_esc(s.name)}</code></td>"
            f'<td class="num">{s.calls}</td>'
            f'<td class="num">{s.self_seconds * 1e3:.2f}</td>'
            f'<td class="num">{s.cum_seconds * 1e3:.2f}</td>'
            f'<td class="num">'
            f"{(s.self_seconds / total if total else 0):.1%}</td></tr>"
            for s in model.profile.flat()[:top]
        )
        parts.append(
            "<table><tr><th>phase</th><th>calls</th><th>self ms</th>"
            f"<th>cum ms</th><th>self %</th></tr>{rows}</table>"
        )
    parts.append("</body></html>\n")
    return "".join(parts)


# ----------------------------------------------------------------------
# Diff: text
# ----------------------------------------------------------------------
def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "missing"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_diff_text(diff: BundleDiff, top: int = 10) -> str:
    """The ``repro diff`` report; verdict line is IDENTICAL/DIVERGED."""
    lines = [
        f"diff: {diff.a.path} vs {diff.b.path}",
        f"  A: command={diff.a.command} run_id={diff.a.run_id} "
        f"backend={diff.a.kernel_backend}",
        f"  B: command={diff.b.command} run_id={diff.b.run_id} "
        f"backend={diff.b.kernel_backend}",
    ]
    for note in diff.notes:
        lines.append(f"  note: {note}")
    lines.append("")

    if diff.result_divergence:
        lines.append(
            f"result divergence: {len(diff.result_divergence)} path(s)"
        )
        for path, va, vb in diff.result_divergence[:top]:
            lines.append(f"  {path}: {va!r} -> {vb!r}")
        if len(diff.result_divergence) > top:
            lines.append(
                f"  ... {len(diff.result_divergence) - top} more"
            )
    else:
        lines.append("result divergence: none")

    if diff.metric_divergence:
        lines.append(
            f"metric divergence: {len(diff.metric_divergence)} sample(s)"
        )
        for delta in diff.metric_divergence[:top]:
            labels = f"{{{delta.labels}}}" if delta.labels else ""
            lines.append(
                f"  {delta.name}{labels}: {_fmt(delta.a)} -> "
                f"{_fmt(delta.b)} ({delta.delta:+g})"
            )
        if len(diff.metric_divergence) > top:
            lines.append(
                f"  ... {len(diff.metric_divergence) - top} more"
            )
    else:
        lines.append("metric divergence: none")

    if diff.meta_divergence:
        lines.append(
            f"meta-count divergence: {len(diff.meta_divergence)} count(s)"
        )
        for key, va, vb in diff.meta_divergence:
            lines.append(f"  {key}: {va} -> {vb}")
    else:
        lines.append("meta-count divergence: none")

    lines.append("")
    if diff.timing_deltas:
        lines.append(
            f"timing deltas (top {min(top, len(diff.timing_deltas))} of "
            f"{len(diff.timing_deltas)}, by |relative change|):"
        )
        for delta in diff.timing_deltas[:top]:
            labels = f"{{{delta.labels}}}" if delta.labels else ""
            rel = (
                f"{delta.rel:+.1%}" if delta.rel != float("inf") else "new"
            )
            lines.append(
                f"  {delta.name}{labels}: {_fmt(delta.a)} -> "
                f"{_fmt(delta.b)} ({rel})"
            )
    else:
        lines.append("timing deltas: none")

    if diff.span_deltas:
        lines.append("")
        lines.append(
            f"wall-time attribution (top "
            f"{min(top, len(diff.span_deltas))} of {len(diff.span_deltas)}"
            " span paths, by |self-seconds change|):"
        )
        for span in diff.span_deltas[:top]:
            lines.append(
                f"  {span.path}: self {span.a_self * 1e3:.2f}ms -> "
                f"{span.b_self * 1e3:.2f}ms ({span.delta * 1e3:+.2f}ms)"
            )

    lines.append("")
    lines.append(
        "verdict: "
        + ("IDENTICAL (zero divergence)" if diff.zero_divergence
           else "DIVERGED")
    )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Diff: HTML
# ----------------------------------------------------------------------
def render_diff_html(diff: BundleDiff, top: int = 25) -> str:
    """Self-contained single-file HTML version of the diff report."""
    parts = [_HTML_HEAD.format(
        title=f"repro diff: {_esc(diff.a.path)} vs {_esc(diff.b.path)}"
    )]
    verdict = "IDENTICAL" if diff.zero_divergence else "DIVERGED"
    parts.append(
        f"<h1>Bundle diff: <code>{_esc(diff.a.path)}</code> vs "
        f"<code>{_esc(diff.b.path)}</code> — {verdict}</h1>"
    )
    parts.append(
        '<p class="meta">'
        f"A: {_esc(diff.a.command)} / {_esc(diff.a.run_id)} / "
        f"{_esc(diff.a.kernel_backend)}<br>"
        f"B: {_esc(diff.b.command)} / {_esc(diff.b.run_id)} / "
        f"{_esc(diff.b.kernel_backend)}</p>"
    )
    if diff.notes:
        items = "".join(f"<li>{_esc(note)}</li>" for note in diff.notes)
        parts.append(f"<ul>{items}</ul>")

    def table(title: str, header: List[str], rows: List[List[str]],
              cls: str = "") -> None:
        parts.append(f"<h2>{_esc(title)}</h2>")
        if not rows:
            parts.append('<p class="meta">none</p>')
            return
        head = "".join(f"<th>{_esc(h)}</th>" for h in header)
        body = "".join(
            f'<tr class="{cls}">'
            + "".join(f"<td>{cell}</td>" for cell in row)
            + "</tr>"
            for row in rows
        )
        parts.append(f"<table><tr>{head}</tr>{body}</table>")

    table(
        "Result divergence", ["path", "A", "B"],
        [
            [f"<code>{_esc(p)}</code>", _esc(repr(va)), _esc(repr(vb))]
            for p, va, vb in diff.result_divergence[:top]
        ],
        cls="warning",
    )
    table(
        "Metric divergence", ["metric", "labels", "A", "B"],
        [
            [f"<code>{_esc(d.name)}</code>", _esc(d.labels),
             _esc(_fmt(d.a)), _esc(_fmt(d.b))]
            for d in diff.metric_divergence[:top]
        ],
        cls="warning",
    )
    table(
        "Meta-count divergence", ["count", "A", "B"],
        [
            [f"<code>{_esc(k)}</code>", _esc(va), _esc(vb)]
            for k, va, vb in diff.meta_divergence[:top]
        ],
        cls="warning",
    )
    table(
        "Timing deltas", ["metric", "labels", "A", "B", "rel"],
        [
            [f"<code>{_esc(d.name)}</code>", _esc(d.labels),
             _esc(_fmt(d.a)), _esc(_fmt(d.b)),
             _esc(f"{d.rel:+.1%}" if d.rel != float("inf") else "new")]
            for d in diff.timing_deltas[:top]
        ],
    )
    table(
        "Wall-time attribution (span paths)",
        ["span path", "A self ms", "B self ms", "delta ms"],
        [
            [f"<code>{_esc(s.path)}</code>",
             f'<span class="num">{s.a_self * 1e3:.2f}</span>',
             f'<span class="num">{s.b_self * 1e3:.2f}</span>',
             f'<span class="num">{s.delta * 1e3:+.2f}</span>']
            for s in diff.span_deltas[:top]
        ],
    )
    parts.append("</body></html>\n")
    return "".join(parts)
