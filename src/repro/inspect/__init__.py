"""Post-hoc run analysis: bundles, analyzers, diffing, reports.

PR 8 made fleet runs *capturable* — correlated traces, merged metrics,
structured logs; this package makes them *answerable*.  It has four
pieces:

* :mod:`repro.inspect.bundle` — :class:`RunReporter` writes every
  artifact of one run (trace JSONL, Chrome trace, metrics snapshot,
  obslog, profiler phases, ExecStats, deterministic results) into one
  directory behind a schema-versioned ``manifest.json`` (the
  ``--report-dir`` flag on ``repro fleet``/``sweep``/``arrivals``/
  ``profile``);
* :mod:`repro.inspect.model` — :func:`load_bundle` reconstructs the
  unified in-memory :class:`RunModel`, keyed by the correlation IDs
  (``run_id``/``shard_id``/``pid``/worker token) stamped at capture
  time;
* :mod:`repro.inspect.analyze` — :func:`analyze` runs the analyzer
  suite (critical path, stragglers, wait-queue dynamics, phase rollup,
  cache effectiveness, evidence completeness) and emits typed
  :class:`Finding` records with severity;
* :mod:`repro.inspect.diff` — :func:`diff_bundles` compares two
  bundles: deterministic-metric divergence, ranked timing deltas,
  span-path wall-time attribution, and result (meta-count) drift —
  ``repro diff`` on the CLI.

:mod:`repro.inspect.render` turns models/diffs into the deterministic
text report (``repro inspect``) and a self-contained single-file HTML
report.
"""

from repro.inspect.analyze import Finding, analyze
from repro.inspect.bundle import (
    BUNDLE_SCHEMA,
    MANIFEST_NAME,
    RunReporter,
    read_manifest,
)
from repro.inspect.diff import BundleDiff, MetricDelta, SpanDelta, diff_bundles
from repro.inspect.model import RunModel, load_bundle
from repro.inspect.render import (
    render_diff_html,
    render_diff_text,
    render_html,
    render_text,
)

__all__ = [
    "BUNDLE_SCHEMA",
    "BundleDiff",
    "Finding",
    "MANIFEST_NAME",
    "MetricDelta",
    "RunModel",
    "RunReporter",
    "SpanDelta",
    "analyze",
    "diff_bundles",
    "load_bundle",
    "read_manifest",
    "render_diff_html",
    "render_diff_text",
    "render_html",
    "render_text",
]
