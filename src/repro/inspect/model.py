"""Unified in-memory model of one captured run.

:func:`load_bundle` reads every artifact a ``--report-dir`` bundle
recorded and reconstructs typed objects: trace events become
:class:`~repro.trace.recorder.TraceEvent` records, the profiler phase
aggregate is folded back into a live
:class:`~repro.profiling.PhaseProfiler` (so ``tree()``/``flat()`` self
vs cumulative attribution works post hoc), ExecStats round-trips
through its dict form, and the obslog is read *tolerantly*
(``strict=False``) — a bundle from a killed run loads, with the torn
line reported in :attr:`RunModel.obslog_truncations` rather than raised.

Everything stays keyed by the correlation IDs stamped at capture time:
:meth:`RunModel.shard_ids` / :meth:`RunModel.workers` walk the merged
trace events' ``shard_id``/``worker``/``pid`` args, so analyzers and
the differ can attribute findings to the process that produced the
evidence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.inspect.bundle import read_manifest
from repro.ioutil import open_text

PathLike = Union[str, Path]

#: Flattened metric-sample key: (sample name, sorted ``k=v`` label text).
MetricKey = Tuple[str, str]


@dataclass
class RunModel:
    """One loaded run bundle (see :func:`load_bundle`)."""

    path: Path
    manifest: Dict[str, Any]
    #: Merged trace events (orchestrator + absorbed worker spans).
    events: List = field(default_factory=list)
    #: Raw metrics snapshot document (``to_json`` layout), or None.
    metrics: Optional[Dict[str, Any]] = None
    #: Structured log records, in emission order.
    obslog: List[Dict[str, Any]] = field(default_factory=list)
    #: Malformed obslog lines skipped by the tolerant reader.
    obslog_truncations: List[str] = field(default_factory=list)
    #: Rebuilt phase profiler (aggregate only), or None.
    profile: Optional[Any] = None
    exec_stats: Optional[Any] = None
    #: The command's deterministic results payload, or None.
    results: Optional[Dict[str, Any]] = None

    # -- manifest accessors -------------------------------------------
    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run_id", ""))

    @property
    def command(self) -> str:
        return str(self.manifest.get("command", ""))

    @property
    def kernel_backend(self) -> str:
        return str(self.manifest.get("kernel_backend", ""))

    @property
    def dropped_events(self) -> int:
        return int(self.manifest.get("dropped_events", 0))

    @property
    def provenance(self) -> Dict[str, str]:
        return dict(self.manifest.get("provenance", {}))

    # -- correlation-ID views -----------------------------------------
    def shard_ids(self) -> List[str]:
        """Distinct ``shard_id`` tokens, first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            shard = event.args.get("shard_id")
            if shard is not None and shard not in seen:
                seen[shard] = None
        return list(seen)

    def workers(self) -> Dict[str, Optional[int]]:
        """``worker token -> OS pid`` for every capturing process seen."""
        out: Dict[str, Optional[int]] = {}
        for event in self.events:
            token = event.args.get("worker")
            if token is not None and token not in out:
                out[token] = event.args.get("pid")
        return out

    def fleet_events(self, name: Optional[str] = None) -> List:
        """Orchestrator ``fleet``-category events, optionally by name."""
        return [
            e for e in self.events
            if e.category == "fleet" and (name is None or e.name == name)
        ]

    # -- metric flattening --------------------------------------------
    def metric_samples(self) -> Dict[MetricKey, float]:
        """Every metric sample flattened to ``(name, labels) -> value``.

        Histograms contribute ``_sum``/``_count`` plus one ``_bucket``
        sample per cumulative bound, mirroring the Prometheus exposition
        — so two runs diverge on exactly the samples a scrape would
        show diverging.
        """
        out: Dict[MetricKey, float] = {}
        if self.metrics is None:
            return out
        for family in self.metrics.get("metrics", []):
            name = family["name"]
            for sample in family.get("samples", []):
                labels = ";".join(
                    f"{k}={v}"
                    for k, v in sorted(sample.get("labels", {}).items())
                )
                if "buckets" in sample:
                    for bucket in sample["buckets"]:
                        le = bucket["le"]
                        key = (
                            f"{name}_bucket",
                            f"{labels};le={le}" if labels else f"le={le}",
                        )
                        out[key] = float(bucket["count"])
                    out[(f"{name}_sum", labels)] = float(sample["sum"])
                    out[(f"{name}_count", labels)] = float(sample["count"])
                else:
                    out[(name, labels)] = float(sample["value"])
        return out


def _load_profile(payload: Dict[str, Any]):
    from repro.profiling import PhaseProfiler

    profiler = PhaseProfiler()
    snapshot = {
        str(path): (int(calls), float(cum))
        for path, (calls, cum) in payload.get("phases", {}).items()
    }
    profiler.absorb(snapshot)
    return profiler


def load_bundle(directory: PathLike) -> RunModel:
    """Reconstruct a :class:`RunModel` from a bundle directory."""
    root = Path(directory)
    manifest = read_manifest(root)
    model = RunModel(path=root, manifest=manifest)
    artifacts = manifest["artifacts"]

    def _path(name: str) -> Optional[Path]:
        filename = artifacts.get(name)
        if filename is None:
            return None
        path = root / filename
        if not path.is_file():
            raise ConfigError(
                f"{root}: manifest names {name} artifact {filename!r} "
                "but the file is missing"
            )
        return path

    trace_path = _path("trace")
    if trace_path is not None:
        from repro.trace import read_jsonl

        model.events = read_jsonl(trace_path)

    metrics_path = _path("metrics")
    if metrics_path is not None:
        with open_text(metrics_path, "r") as handle:
            try:
                model.metrics = json.load(handle)
            except ValueError as exc:
                raise ConfigError(
                    f"{metrics_path}: not valid JSON: {exc}"
                ) from exc

    obslog_path = _path("obslog")
    if obslog_path is not None:
        from repro.obslog import read_obslog

        model.obslog = read_obslog(
            obslog_path, strict=False, errors=model.obslog_truncations
        )

    profile_path = _path("profile")
    if profile_path is not None:
        with open_text(profile_path, "r") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise ConfigError(
                    f"{profile_path}: not valid JSON: {exc}"
                ) from exc
        model.profile = _load_profile(payload)

    stats_path = _path("exec_stats")
    if stats_path is not None:
        from repro.exec.stats import ExecStats

        with open_text(stats_path, "r") as handle:
            model.exec_stats = ExecStats.from_dict(json.load(handle))

    results_path = _path("results")
    if results_path is not None:
        with open_text(results_path, "r") as handle:
            try:
                model.results = json.load(handle)
            except ValueError as exc:
                raise ConfigError(
                    f"{results_path}: not valid JSON: {exc}"
                ) from exc
    return model
