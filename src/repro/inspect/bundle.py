"""Run bundles: every artifact of one run behind one manifest.

A *run bundle* is a directory holding the full observability capture of
one CLI invocation — trace JSONL, Chrome trace, metrics JSON snapshot,
obslog JSONL, profiler phase aggregate, ExecStats and the command's
deterministic results — indexed by a schema-versioned ``manifest.json``
so loaders (:mod:`repro.inspect.model`) never guess at file names or
formats.

:class:`RunReporter` is the capture side, wired behind ``--report-dir``:
it *shares* whatever sinks the command already constructed from its
other observability flags (``--metrics-out`` registry, ``--trace-out``
recorder, ``--log-jsonl`` obslog) and creates any that are missing, so
one run never splits its evidence across two registries.  With
``compress=True`` the line-oriented artifacts are written ``.gz``
(transparent on read — see :mod:`repro.ioutil`).

The manifest records the correlation ``run_id`` (the same
:func:`~repro.telemetry.provenance.config_hash` the obslog and merged
trace events carry), provenance, the trace drop count (analysis built on
a truncated ring must say so), and per-artifact entry counts.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigError
from repro.ioutil import open_text

PathLike = Union[str, Path]

#: Version tag checked by :func:`read_manifest`; bump on breaking layout
#: changes so stale bundles fail loudly instead of half-loading.
BUNDLE_SCHEMA = "repro.bundle/1"

MANIFEST_NAME = "manifest.json"


def read_manifest(directory: PathLike) -> Dict[str, Any]:
    """Load and schema-check a bundle's ``manifest.json``."""
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise ConfigError(
            f"{directory}: not a run bundle (no {MANIFEST_NAME}); "
            "produce one with --report-dir"
        )
    with open(path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except ValueError as exc:
            raise ConfigError(f"{path}: not valid JSON: {exc}") from exc
    schema = manifest.get("schema") if isinstance(manifest, dict) else None
    if schema != BUNDLE_SCHEMA:
        raise ConfigError(
            f"{path}: schema {schema!r} does not match {BUNDLE_SCHEMA!r}; "
            "regenerate the bundle with --report-dir"
        )
    if not isinstance(manifest.get("artifacts"), dict):
        raise ConfigError(f"{path}: missing 'artifacts' mapping")
    return manifest


class RunReporter:
    """Capture one run's artifacts into a bundle directory.

    Parameters
    ----------
    directory:
        Bundle output directory (created, must be empty of a previous
        manifest or ``overwrite`` must hold).
    command:
        The CLI command name stamped into the manifest (``fleet``...).
    run_id:
        Correlation ID for the run (``config_hash`` of the run shape).
    registry / recorder / obslog:
        Already-constructed sinks to share; any left ``None`` is created
        here.  A shared ``obslog`` writes wherever its owner pointed it —
        pass ``obslog_source`` so :meth:`finish` can copy the closed file
        into the bundle.
    compress:
        Write the line-oriented artifacts gzip-compressed (``.gz``).
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        command: str,
        run_id: str,
        registry=None,
        recorder=None,
        obslog=None,
        obslog_source: Optional[PathLike] = None,
        compress: bool = False,
        overwrite: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = self.directory / MANIFEST_NAME
        if manifest.exists() and not overwrite:
            raise ConfigError(f"{self.directory}: bundle already exists")
        self.command = str(command)
        self.run_id = str(run_id)
        self.compress = bool(compress)
        self._suffix = ".gz" if compress else ""
        self._owns_obslog = obslog is None and obslog_source is None
        self._obslog_source = (
            Path(obslog_source) if obslog_source is not None else None
        )

        if registry is None:
            from repro.telemetry import MetricsRegistry, stamp

            registry = MetricsRegistry()
            stamp(registry, None, command=self.command, run_id=self.run_id)
        self.registry = registry
        if recorder is None:
            from repro.trace import TraceRecorder

            recorder = TraceRecorder(capacity=262_144)
        self.recorder = recorder
        if self._owns_obslog:
            from repro.obslog import ObsLogger

            obslog = ObsLogger(
                self.directory / f"obslog.jsonl{self._suffix}",
                run_id=self.run_id,
            )
        self.obslog = obslog
        from repro.profiling import PhaseProfiler

        self.profiler = PhaseProfiler()
        self._artifacts: Dict[str, str] = {}
        self._counts: Dict[str, int] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Artifact writers (each registers itself in the manifest)
    # ------------------------------------------------------------------
    def _write_json(self, name: str, filename: str, payload: Any) -> None:
        path = self.directory / filename
        with open_text(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        self._artifacts[name] = filename

    def _write_trace(self, clock_ghz: float) -> None:
        from repro.trace import write_chrome_trace, write_jsonl

        events = self.recorder.events()
        if not events:
            return
        filename = f"trace.jsonl{self._suffix}"
        self._counts["trace_events"] = write_jsonl(
            events, self.directory / filename
        )
        self._artifacts["trace"] = filename
        write_chrome_trace(
            events, self.directory / "trace.chrome.json", clock_ghz=clock_ghz
        )
        self._artifacts["chrome_trace"] = "trace.chrome.json"

    def _write_metrics(self) -> None:
        from repro.telemetry import write_json

        if not self.registry.families() and not self.registry.provenance:
            return
        filename = f"metrics.json{self._suffix}"
        families = write_json(self.registry, self.directory / filename)
        self._artifacts["metrics"] = filename
        self._counts["metric_families"] = families

    def _write_obslog(self) -> None:
        if self.obslog is not None and self._owns_obslog:
            self._counts["obslog_records"] = self.obslog.records_written
            self.obslog.close()
            self._artifacts["obslog"] = f"obslog.jsonl{self._suffix}"
        elif self._obslog_source is not None and self._obslog_source.is_file():
            # The command's own --log-jsonl owns the stream; copy the
            # closed file in so the bundle stays self-contained.
            filename = "obslog.jsonl" + (
                ".gz" if self._obslog_source.suffix == ".gz" else self._suffix
            )
            if self._obslog_source.suffix == ".gz" or not self.compress:
                shutil.copyfile(
                    self._obslog_source, self.directory / filename
                )
            else:
                with open(self._obslog_source, "r", encoding="utf-8") as src:
                    with open_text(self.directory / filename, "w") as dst:
                        shutil.copyfileobj(src, dst)
            self._artifacts["obslog"] = filename

    def _write_profile(self) -> None:
        snapshot = self.profiler.snapshot()
        if not snapshot:
            return
        self._write_json(
            "profile", "profile.json",
            {
                "phases": {
                    path: [calls, round(cum, 9)]
                    for path, (calls, cum) in sorted(snapshot.items())
                },
            },
        )
        self._counts["profile_phases"] = len(snapshot)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finish(
        self,
        results: Optional[Dict[str, Any]] = None,
        exec_stats=None,
        clock_ghz: float = 1.0,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write every artifact plus the manifest; returns the manifest
        path.  ``results`` is the command's deterministic outcome (the
        differ's meta-count divergence works off it); ``exec_stats`` an
        :class:`~repro.exec.stats.ExecStats`; ``extra`` merges into the
        manifest top level (command flags worth recording)."""
        if self._finished:
            raise ConfigError(f"{self.directory}: bundle already finalized")
        self._finished = True
        self._write_trace(clock_ghz)
        self._write_metrics()
        self._write_obslog()
        self._write_profile()
        if exec_stats is not None:
            self._write_json(
                "exec_stats", "exec_stats.json", exec_stats.to_dict()
            )
        if results is not None:
            self._write_json("results", "results.json", results)
        from repro.fastpath import resolve_kernel_backend
        from repro.telemetry.provenance import collect_provenance

        manifest: Dict[str, Any] = {
            "schema": BUNDLE_SCHEMA,
            "command": self.command,
            "run_id": self.run_id,
            "kernel_backend": resolve_kernel_backend(),
            "provenance": collect_provenance(command=self.command),
            "dropped_events": int(self.recorder.dropped),
            "artifacts": dict(sorted(self._artifacts.items())),
            "counts": dict(sorted(self._counts.items())),
        }
        if extra:
            manifest.update(extra)
        path = self.directory / MANIFEST_NAME
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
