"""Analyzers: turn a loaded :class:`~repro.inspect.model.RunModel` into
typed findings.

Each analyzer answers one recurring post-mortem question:

* *evidence completeness* — can the rest of the report be trusted, or
  did the trace ring drop events / the obslog tear mid-line?
* *critical path* — which chain of phases, orchestrator rounds included,
  bounds wall time, and which single phase dominates self time?
* *stragglers* — is one worker process doing disproportionate work?
* *wait queue* — how deep did the fleet admission queue run, and how
  long did jobs wait between arrival and admission (cycles)?
* *phase rollup* — do the profiler's parent/child cumulative times and
  the executor's job-seconds reconcile, or is attribution broken?
* *cache effectiveness* — hit rate, evictions, schema invalidations.

Every analyzer is defensive about missing artifacts: a bundle captured
without ``--trace-out``-grade detail still yields the findings its
evidence supports, and nothing more.  Output order and content are
deterministic for a given bundle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.inspect.model import RunModel

SEVERITIES = ("info", "warning")

#: A worst/median worker imbalance at or beyond this ratio is flagged.
STRAGGLER_RATIO = 4.0

#: Children may overrun their parent's cumulative time by at most this
#: factor before phase attribution is reported broken (tolerates float
#: rounding through snapshot/absorb round-trips).
ROLLUP_TOLERANCE = 1.0001


@dataclass(frozen=True)
class Finding:
    """One analyzer conclusion, severity-tagged and render-agnostic."""

    severity: str  # "info" | "warning"
    category: str  # analyzer slug, e.g. "critical_path"
    title: str
    detail: str
    data: Dict[str, Any] = field(default_factory=dict)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


# ----------------------------------------------------------------------
# Individual analyzers (each returns a possibly-empty finding list)
# ----------------------------------------------------------------------
def _analyze_evidence(model: RunModel) -> List[Finding]:
    findings: List[Finding] = []
    if model.dropped_events > 0:
        findings.append(Finding(
            severity="warning",
            category="evidence",
            title="evidence incomplete: trace events dropped",
            detail=(
                f"the trace ring buffer dropped {model.dropped_events} "
                "event(s); timeline-based findings below may undercount — "
                "re-run with a larger --trace capacity for full evidence"
            ),
            data={"dropped_events": model.dropped_events},
        ))
    if model.obslog_truncations:
        findings.append(Finding(
            severity="warning",
            category="evidence",
            title="evidence incomplete: obslog truncated",
            detail=(
                f"{len(model.obslog_truncations)} malformed obslog "
                "line(s) were skipped (typically a torn final line from "
                "a killed run): "
                + "; ".join(model.obslog_truncations[:3])
            ),
            data={"truncated_lines": len(model.obslog_truncations)},
        ))
    return findings


def _analyze_critical_path(model: RunModel) -> List[Finding]:
    profiler = model.profile
    if profiler is None:
        return []
    tree = profiler.tree()
    if not tree:
        return []
    # Greedy max-cumulative descent: start at the heaviest root and at
    # each level follow the heaviest direct child.  With spans covering
    # their children this is the chain that bounds wall time.  A root is
    # any path without a recorded parent — absorbed snapshots grafted
    # under a prefix have no node for the prefix itself, so "len == 1"
    # would miss them.
    roots = [p for p in tree if p[:-1] not in tree]
    path: Tuple[str, ...] = max(
        roots, key=lambda p: (tree[p].cum_seconds, p)
    )
    chain = [path]
    while True:
        children = [p for p in tree if p[:-1] == path]
        if not children:
            break
        path = max(children, key=lambda p: (tree[p].cum_seconds, p))
        chain.append(path)
    total = sum(tree[p].cum_seconds for p in roots)
    flat = profiler.flat()
    dominant = flat[0]
    chain_text = " -> ".join(
        f"{p[-1]} ({tree[p].cum_seconds * 1e3:.2f}ms)" for p in chain
    )
    share = dominant.self_seconds / total if total > 0 else 0.0
    return [Finding(
        severity="info",
        category="critical_path",
        title=f"critical path: {' -> '.join(p[-1] for p in chain)}",
        detail=(
            f"critical path {chain_text}; dominant self-time phase "
            f"'{dominant.name}' ({dominant.self_seconds * 1e3:.2f}ms, "
            f"{share:.1%} of {total * 1e3:.2f}ms total)"
        ),
        data={
            "chain": ["/".join(p) for p in chain],
            "chain_cum_seconds": [
                round(tree[p].cum_seconds, 9) for p in chain
            ],
            "dominant_phase": dominant.name,
            "dominant_self_seconds": round(dominant.self_seconds, 9),
            "total_seconds": round(total, 9),
        },
    )]


def _worker_job_seconds(model: RunModel) -> Dict[str, float]:
    """Total executed-job seconds per worker identity.

    Prefers obslog ``exec.job`` debug records (every executed job, keyed
    by ``worker_pid``); falls back to trace ``job`` spans carrying the
    envelope-stamped ``worker``/``pid`` args.
    """
    totals: Dict[str, float] = {}
    for record in model.obslog:
        if record.get("event") != "exec.job":
            continue
        pid = record.get("worker_pid")
        seconds = record.get("seconds")
        if pid is None or seconds is None:
            continue
        key = f"pid={pid}"
        totals[key] = totals.get(key, 0.0) + float(seconds)
    if totals:
        return totals
    for event in model.events:
        if event.name != "job" or event.duration is None:
            continue
        worker = event.args.get("worker") or event.args.get("pid")
        if worker is None:
            continue
        key = str(worker)
        totals[key] = totals.get(key, 0.0) + float(event.duration)
    return totals


def _analyze_stragglers(model: RunModel) -> List[Finding]:
    totals = _worker_job_seconds(model)
    if len(totals) < 2:
        return []
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    values = sorted(v for _, v in ranked)
    median = _percentile(values, 0.5)
    worst_key, worst = ranked[0]
    ratio = worst / median if median > 0 else float("inf")
    data = {
        "workers": len(totals),
        "worst_worker": worst_key,
        "worst_seconds": round(worst, 6),
        "median_seconds": round(median, 6),
        "ratio": round(ratio, 3) if median > 0 else None,
    }
    if median > 0 and ratio >= STRAGGLER_RATIO:
        return [Finding(
            severity="warning",
            category="stragglers",
            title=f"straggler worker {worst_key}",
            detail=(
                f"worker {worst_key} ran {worst:.3f}s of jobs vs a "
                f"{median:.3f}s median across {len(totals)} workers "
                f"({ratio:.1f}x) — load is imbalanced"
            ),
            data=data,
        )]
    return [Finding(
        severity="info",
        category="stragglers",
        title=f"worker load balanced across {len(totals)} workers",
        detail=(
            f"busiest worker {worst_key} ran {worst:.3f}s of jobs vs a "
            f"{median:.3f}s median — within the {STRAGGLER_RATIO:.0f}x "
            "straggler threshold"
        ),
        data=data,
    )]


def _analyze_wait_queue(model: RunModel) -> List[Finding]:
    findings: List[Finding] = []
    # Depth timeline from the per-round "round" instants the fleet
    # simulator traces (wait = queue depth entering the round).
    rounds = model.fleet_events("round")
    depths = [int(e.args.get("wait", 0)) for e in rounds]
    if not depths:
        depths = [
            int(r.get("wait", 0)) for r in model.obslog
            if r.get("event") == "fleet.round"
        ]
    # Admission latency: arrive -> admit per job id, in cycles.
    arrivals: Dict[Any, float] = {}
    latencies: List[float] = []
    for event in model.fleet_events():
        job = event.args.get("job")
        if job is None:
            continue
        if event.name == "arrive":
            arrivals.setdefault(job, event.time)
        elif event.name == "admit" and job in arrivals:
            latencies.append(event.time - arrivals.pop(job))
    if not depths and not latencies:
        return []
    data: Dict[str, Any] = {}
    parts: List[str] = []
    if depths:
        data.update(
            max_wait_depth=max(depths),
            final_wait_depth=depths[-1],
            rounds=len(depths),
        )
        parts.append(
            f"wait-queue depth peaked at {max(depths)} over "
            f"{len(depths)} round(s), ending at {depths[-1]}"
        )
    if latencies:
        latencies.sort()
        p50 = _percentile(latencies, 0.5)
        p95 = _percentile(latencies, 0.95)
        data.update(
            admissions=len(latencies),
            admission_p50_cycles=p50,
            admission_p95_cycles=p95,
            admission_max_cycles=latencies[-1],
        )
        parts.append(
            f"admission latency over {len(latencies)} admission(s): "
            f"p50 {p50:.0f} / p95 {p95:.0f} / max {latencies[-1]:.0f} "
            "cycles"
        )
    severity = "warning" if depths and depths[-1] > 0 else "info"
    title = (
        f"{depths[-1]} job(s) still waiting at horizon"
        if severity == "warning" else "wait-queue dynamics"
    )
    findings.append(Finding(
        severity=severity,
        category="wait_queue",
        title=title,
        detail="; ".join(parts),
        data=data,
    ))
    return findings


def _analyze_phase_rollup(model: RunModel) -> List[Finding]:
    profiler = model.profile
    if profiler is None:
        return []
    findings: List[Finding] = []
    tree = profiler.tree()
    # Parent/child reconciliation: direct children must not (modulo
    # float noise) exceed their parent's cumulative time, or self-time
    # attribution is lying.
    for path in sorted(tree):
        children_cum = sum(
            s.cum_seconds for p, s in tree.items() if p[:-1] == path
        )
        parent_cum = tree[path].cum_seconds
        if children_cum > parent_cum * ROLLUP_TOLERANCE:
            findings.append(Finding(
                severity="warning",
                category="phase_rollup",
                title=f"phase attribution overrun under '{path[-1]}'",
                detail=(
                    f"direct children of {'/'.join(path)} sum to "
                    f"{children_cum * 1e3:.3f}ms cumulative but the "
                    f"parent recorded {parent_cum * 1e3:.3f}ms — "
                    "overlapping or mis-nested spans"
                ),
                data={
                    "path": "/".join(path),
                    "parent_cum_seconds": round(parent_cum, 9),
                    "children_cum_seconds": round(children_cum, 9),
                },
            ))
    # Reconcile worker job time against ExecStats' own accounting.
    if model.exec_stats is not None and model.exec_stats.job_seconds:
        stats_total = sum(model.exec_stats.job_seconds)
        profiled = sum(
            s.cum_seconds for p, s in tree.items() if p[-1] == "worker.job"
        )
        if profiled > 0:
            drift = abs(profiled - stats_total) / max(stats_total, 1e-12)
            findings.append(Finding(
                severity="info" if drift <= 0.5 else "warning",
                category="phase_rollup",
                title="profiler vs ExecStats job-time reconciliation",
                detail=(
                    f"worker.job phases total {profiled:.3f}s vs "
                    f"{stats_total:.3f}s of ExecStats job seconds "
                    f"({drift:.1%} drift)"
                ),
                data={
                    "profiled_seconds": round(profiled, 9),
                    "exec_stats_seconds": round(stats_total, 9),
                    "drift": round(drift, 6),
                },
            ))
    flat = profiler.flat()
    if flat:
        total = sum(
            s.cum_seconds for p, s in tree.items() if p[:-1] not in tree
        )
        top = [
            {
                "phase": s.name,
                "self_seconds": round(s.self_seconds, 9),
                "share": round(s.self_seconds / total, 6) if total else 0.0,
            }
            for s in flat[:5]
        ]
        findings.append(Finding(
            severity="info",
            category="phase_rollup",
            title="top self-time phases",
            detail=", ".join(
                f"{t['phase']} {t['self_seconds'] * 1e3:.2f}ms" for t in top
            ),
            data={"top": top, "total_seconds": round(total, 9)},
        ))
    return findings


def _analyze_cache(model: RunModel) -> List[Finding]:
    stats = model.exec_stats
    if stats is None or stats.jobs_total == 0:
        return []
    hit_rate = stats.cache_hits / stats.jobs_total
    findings = [Finding(
        severity="info",
        category="cache",
        title=f"cache effectiveness: {hit_rate:.1%} hit rate",
        detail=(
            f"{stats.cache_hits}/{stats.jobs_total} jobs served from "
            f"cache; {stats.jobs_run} executed, "
            f"{stats.cache_evictions} eviction(s)"
        ),
        data={
            "jobs_total": stats.jobs_total,
            "cache_hits": stats.cache_hits,
            "jobs_run": stats.jobs_run,
            "hit_rate": round(hit_rate, 6),
            "evictions": stats.cache_evictions,
            "schema_evictions": stats.cache_schema_evictions,
        },
    )]
    if stats.cache_schema_evictions > 0:
        findings.append(Finding(
            severity="warning",
            category="cache",
            title="cache schema evictions",
            detail=(
                f"{stats.cache_schema_evictions} cached result(s) were "
                "invalidated by a schema change — expect cold-start cost "
                "until the cache repopulates"
            ),
            data={"schema_evictions": stats.cache_schema_evictions},
        ))
    return findings


_ANALYZERS = (
    _analyze_evidence,
    _analyze_critical_path,
    _analyze_stragglers,
    _analyze_wait_queue,
    _analyze_phase_rollup,
    _analyze_cache,
)


def analyze(model: RunModel) -> List[Finding]:
    """Run every analyzer; warnings sort before infos, analyzer order
    otherwise preserved (deterministic for a given bundle)."""
    findings: List[Finding] = []
    for analyzer in _ANALYZERS:
        findings.extend(analyzer(model))
    order = {severity: i for i, severity in enumerate(SEVERITIES)}
    ranked = sorted(
        enumerate(findings),
        key=lambda pair: (-order.get(pair[1].severity, 0), pair[0]),
    )
    return [finding for _, finding in ranked]
