"""Run-vs-run diffing over two loaded bundles.

:func:`diff_bundles` separates what *must* match from what *may* drift:

* **Result divergence** — the command's deterministic results payload
  (fleet summaries, sweep policy stats...).  Two identical-seed,
  identical-config runs must agree byte-for-byte here, whatever the
  kernel backend; any delta is a determinism bug (the paper's
  scalar-vs-numpy oracle contract, applied post hoc).
* **Metric divergence** — deterministic counters/gauges (event counts,
  job totals, cache traffic).  Same contract as results; timing-derived
  families are excluded by name.
* **Timing deltas** — wall-seconds metrics and histogram samples,
  ranked by relative change.  Expected to differ; the ranking says
  *where*.
* **Span deltas** — per-phase self-seconds from the two profiler
  aggregates, ranked by absolute change: the wall-time attribution that
  tells you *which code path* got slower, not just that the run did.

``zero_divergence`` holds iff both divergence lists are empty — the
property the CI inspect smoke asserts across backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.inspect.model import RunModel, load_bundle

#: Metric families whose values depend on host timing, not simulation
#: state: excluded from the determinism contract, ranked as timing.
_TIMING_MARKERS = ("seconds", "wall")
_TIMING_PREFIXES = ("repro_health_",)
#: Families skipped entirely (pure provenance, diffs are meaningless).
_SKIPPED_METRICS = ("repro_build_info",)


def _is_timing_metric(name: str) -> bool:
    base = name
    for suffix in ("_bucket", "_sum", "_count"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    if any(base.startswith(p) for p in _TIMING_PREFIXES):
        return True
    return any(marker in base for marker in _TIMING_MARKERS)


@dataclass(frozen=True)
class MetricDelta:
    """One metric sample that differs between the two runs."""

    name: str
    labels: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> float:
        return (self.b or 0.0) - (self.a or 0.0)

    @property
    def rel(self) -> float:
        if not self.a:
            return float("inf") if self.delta else 0.0
        return self.delta / abs(self.a)


@dataclass(frozen=True)
class SpanDelta:
    """Self-seconds change of one profiler phase path."""

    path: str
    a_self: float
    b_self: float
    a_cum: float
    b_cum: float

    @property
    def delta(self) -> float:
        return self.b_self - self.a_self


@dataclass
class BundleDiff:
    """Everything :func:`diff_bundles` concluded, render-agnostic."""

    a: RunModel
    b: RunModel
    #: Dotted result paths whose values differ (determinism drift).
    result_divergence: List[Tuple[str, Any, Any]] = field(
        default_factory=list
    )
    #: Deterministic metric samples that differ (determinism drift).
    metric_divergence: List[MetricDelta] = field(default_factory=list)
    #: Manifest artifact counts that differ (meta-count drift: the two
    #: runs did not even record the same number of things).
    meta_divergence: List[Tuple[str, Any, Any]] = field(
        default_factory=list
    )
    #: Timing samples ranked by |relative change| (expected to differ).
    timing_deltas: List[MetricDelta] = field(default_factory=list)
    #: Phase self-time attribution ranked by |absolute change|.
    span_deltas: List[SpanDelta] = field(default_factory=list)
    #: Run-shape observations (backend/command/run_id differences).
    notes: List[str] = field(default_factory=list)

    @property
    def zero_divergence(self) -> bool:
        """No deterministic drift — results, counters, and artifact
        meta-counts all agree."""
        return (
            not self.result_divergence
            and not self.metric_divergence
            and not self.meta_divergence
        )


def _flatten_results(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """Recursive dotted-path flattening of a results document."""
    out: Dict[str, Any] = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            out.update(_flatten_results(payload[key], f"{prefix}{key}."))
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            out.update(_flatten_results(item, f"{prefix}{index}."))
    else:
        out[prefix[:-1] if prefix else ""] = payload
    return out


def _diff_results(diff: BundleDiff) -> None:
    flat_a = _flatten_results(diff.a.results) if diff.a.results else {}
    flat_b = _flatten_results(diff.b.results) if diff.b.results else {}
    for path in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(path), flat_b.get(path)
        if va != vb:
            diff.result_divergence.append((path, va, vb))


def _diff_metrics(diff: BundleDiff) -> None:
    samples_a = diff.a.metric_samples()
    samples_b = diff.b.metric_samples()
    timing: List[MetricDelta] = []
    for key in sorted(set(samples_a) | set(samples_b)):
        name, labels = key
        if any(name.startswith(skip) for skip in _SKIPPED_METRICS):
            continue
        va, vb = samples_a.get(key), samples_b.get(key)
        if va == vb:
            continue
        delta = MetricDelta(name=name, labels=labels, a=va, b=vb)
        if _is_timing_metric(name):
            timing.append(delta)
        else:
            diff.metric_divergence.append(delta)
    timing.sort(key=lambda d: (-abs(d.rel), d.name, d.labels))
    diff.timing_deltas = timing


def _diff_spans(diff: BundleDiff) -> None:
    if diff.a.profile is None or diff.b.profile is None:
        return
    tree_a = diff.a.profile.tree()
    tree_b = diff.b.profile.tree()
    deltas: List[SpanDelta] = []
    for path in sorted(set(tree_a) | set(tree_b)):
        stats_a = tree_a.get(path)
        stats_b = tree_b.get(path)
        a_self = stats_a.self_seconds if stats_a is not None else 0.0
        b_self = stats_b.self_seconds if stats_b is not None else 0.0
        a_cum = stats_a.cum_seconds if stats_a is not None else 0.0
        b_cum = stats_b.cum_seconds if stats_b is not None else 0.0
        if a_self == b_self and a_cum == b_cum:
            continue
        deltas.append(SpanDelta(
            path="/".join(path),
            a_self=a_self, b_self=b_self, a_cum=a_cum, b_cum=b_cum,
        ))
    deltas.sort(key=lambda d: (-abs(d.delta), d.path))
    diff.span_deltas = deltas


def _diff_notes(diff: BundleDiff) -> None:
    if diff.a.command != diff.b.command:
        diff.notes.append(
            f"commands differ: {diff.a.command!r} vs {diff.b.command!r}"
        )
    if diff.a.run_id != diff.b.run_id:
        diff.notes.append(
            f"run_ids differ: {diff.a.run_id} vs {diff.b.run_id} — "
            "the runs were configured differently"
        )
    if diff.a.kernel_backend != diff.b.kernel_backend:
        diff.notes.append(
            f"kernel backends differ: {diff.a.kernel_backend} vs "
            f"{diff.b.kernel_backend} — result divergence below would "
            "be an oracle violation; timing deltas are the comparison"
        )
    counts_a = diff.a.manifest.get("counts", {})
    counts_b = diff.b.manifest.get("counts", {})
    for key in sorted(set(counts_a) | set(counts_b)):
        if counts_a.get(key) != counts_b.get(key):
            diff.meta_divergence.append(
                (key, counts_a.get(key), counts_b.get(key))
            )
    if diff.a.dropped_events or diff.b.dropped_events:
        diff.notes.append(
            f"dropped trace events: {diff.a.dropped_events} vs "
            f"{diff.b.dropped_events} — evidence incomplete"
        )


def diff_bundles(a, b) -> BundleDiff:
    """Diff two bundles; accepts paths or loaded :class:`RunModel`\\ s."""
    model_a = a if isinstance(a, RunModel) else load_bundle(a)
    model_b = b if isinstance(b, RunModel) else load_bundle(b)
    diff = BundleDiff(a=model_a, b=model_b)
    _diff_results(diff)
    _diff_metrics(diff)
    _diff_spans(diff)
    _diff_notes(diff)
    return diff
