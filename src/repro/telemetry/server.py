"""A stdlib scrape endpoint for live runs.

:class:`MetricsServer` wraps :class:`http.server.ThreadingHTTPServer` in
a daemon thread and serves the current Prometheus text exposition of one
registry at ``GET /metrics`` (and ``/`` as a convenience redirect-free
alias).  Intended for long `repro arrivals` runs started with
``--metrics-port``: point a browser, ``curl``, or an actual Prometheus
scraper at it while the simulation is still going.

Port 0 asks the OS for a free port; the bound port is available as
:attr:`MetricsServer.port` after :meth:`start`.
"""

from __future__ import annotations

import errno
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import TelemetryError
from repro.telemetry.exposition import to_prometheus
from repro.telemetry.metrics import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set by the server factory

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        body = to_prometheus(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes should not spam the simulation's stdout


class MetricsServer:
    """Serve one registry's exposition until :meth:`close`."""

    def __init__(self, registry: MetricsRegistry, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        handler = type("BoundHandler", (_Handler,), {"registry": registry})
        try:
            self._httpd = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                reason = ("already in use" if exc.errno == errno.EADDRINUSE
                          else "not permitted")
                raise TelemetryError(
                    f"cannot serve metrics on {host}:{port}: port {port} is "
                    f"{reason}; pass a different --metrics-port (0 picks a "
                    "free port)"
                ) from exc
            raise
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.host = host

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
