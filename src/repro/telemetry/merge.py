"""Snapshot and merge :class:`MetricsRegistry` state across processes.

Pool workers capture metrics into a private registry; the orchestrator
cannot share the live object across the process boundary, so the worker
side serialises its registry with :func:`snapshot_registry` (a plain
list of dicts — picklable, JSON-able, schema-stable) and the
orchestrator folds each snapshot into its own registry with
:func:`merge_registry`.

Merge semantics, per family kind:

* **counter** — exact sums.  Folding worker snapshots in job order
  makes the merged aggregates deterministic, so a serial run and a
  ``--jobs 2`` run of the same fleet produce byte-identical
  expositions.
* **histogram** — exact elementwise bucket sums (plus ``sum`` and
  ``count``).  A snapshot whose bucket boundaries disagree with the
  orchestrator's family is a schema conflict: summing misaligned
  buckets would silently corrupt quantiles, so the merge raises a
  :class:`~repro.errors.TelemetryError` naming the family instead.
* **gauge** — last-write-wins in merge order.  Gauges are point-in-time
  readings; summing them (e.g. two workers' queue depths sampled at
  different instants) has no meaning.

Kind or label-name conflicts are likewise fatal: they mean two
processes disagree about what a family *is*, which is a bug, not data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError, TelemetryError
from repro.telemetry.metrics import MetricsRegistry

_COUNTER = "counter"
_GAUGE = "gauge"
_HISTOGRAM = "histogram"


def snapshot_registry(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Serialise every family into a picklable list of plain dicts.

    Each entry carries ``name``/``kind``/``help``/``labels`` (and
    ``buckets`` for histograms) plus the per-child ``samples`` in
    insertion order, so :func:`merge_registry` can rebuild the family
    exactly and detect schema drift.
    """
    snapshot: List[Dict[str, Any]] = []
    for family in registry.families():
        entry: Dict[str, Any] = {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "labels": list(family.label_names),
        }
        if family.kind == _HISTOGRAM:
            entry["buckets"] = list(family.buckets)
        samples: List[Dict[str, Any]] = []
        for label_values, child in family.samples():
            sample: Dict[str, Any] = {"labels": list(label_values)}
            if family.kind == _HISTOGRAM:
                sample["counts"] = list(child.counts)
                sample["sum"] = child.sum
                sample["count"] = child.count
            else:
                sample["value"] = child.value
            samples.append(sample)
        entry["samples"] = samples
        snapshot.append(entry)
    return snapshot


def _make_family(registry: MetricsRegistry, entry: Dict[str, Any]):
    labels = tuple(entry["labels"])
    kind = entry["kind"]
    try:
        if kind == _COUNTER:
            return registry.counter(entry["name"], entry["help"], labels)
        if kind == _GAUGE:
            return registry.gauge(entry["name"], entry["help"], labels)
        if kind == _HISTOGRAM:
            return registry.histogram(
                entry["name"], entry["help"], labels,
                buckets=tuple(entry["buckets"]),
            )
    except ConfigError as exc:
        raise TelemetryError(
            f"cannot merge family {entry['name']!r}: {exc}"
        ) from exc
    raise TelemetryError(
        f"cannot merge family {entry['name']!r}: unknown kind {kind!r}"
    )


def _check_compatible(family, entry: Dict[str, Any]) -> None:
    name = entry["name"]
    if family.kind != entry["kind"]:
        raise TelemetryError(
            f"cannot merge {name!r}: registered as {family.kind} but "
            f"snapshot says {entry['kind']}"
        )
    if tuple(family.label_names) != tuple(entry["labels"]):
        raise TelemetryError(
            f"cannot merge {name!r}: label names differ "
            f"({list(family.label_names)} vs {entry['labels']})"
        )
    if family.kind == _HISTOGRAM:
        theirs = tuple(float(b) for b in entry["buckets"])
        ours = tuple(float(b) for b in family.buckets)
        if ours != theirs:
            raise TelemetryError(
                f"cannot merge histogram {name!r}: conflicting bucket "
                f"boundaries ({list(ours)} vs {list(theirs)})"
            )


def merge_registry(
    registry: Optional[MetricsRegistry],
    snapshot: Sequence[Dict[str, Any]],
) -> int:
    """Fold a worker snapshot into ``registry``; returns samples merged.

    A ``None`` or disabled registry (the :data:`NullRegistry` stand-in)
    is a no-op — the zero-overhead contract of every other hook.
    """
    if registry is None or not getattr(registry, "enabled", False):
        return 0
    merged = 0
    for entry in snapshot:
        family = registry.get(entry["name"])
        if family is None:
            family = _make_family(registry, entry)
        else:
            _check_compatible(family, entry)
        for sample in entry["samples"]:
            child = family.labels(*sample["labels"])
            if family.kind == _HISTOGRAM:
                counts = sample["counts"]
                if len(counts) != len(child.counts):
                    raise TelemetryError(
                        f"cannot merge histogram {entry['name']!r}: "
                        f"bucket count mismatch ({len(child.counts)} vs "
                        f"{len(counts)})"
                    )
                for index, value in enumerate(counts):
                    child.counts[index] += int(value)
                child.sum += float(sample["sum"])
                child.count += int(sample["count"])
            elif family.kind == _COUNTER:
                child.value += float(sample["value"])
            else:  # gauge: last write wins in merge order
                child.value = float(sample["value"])
            merged += 1
    return merged
