"""Exposition formats: Prometheus text, JSON snapshot — and a validator.

:func:`to_prometheus` renders a registry in the Prometheus text
exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one
``name{labels} value`` sample per line, histograms as cumulative
``_bucket{le=...}`` series plus ``_sum`` / ``_count``.  The registry's
provenance mapping is emitted as one ``repro_build_info`` gauge whose
labels carry the run's identity (the Prometheus "info metric" idiom).

:func:`parse_prometheus` is the pure-python format checker the test
suite and the CI smoke step use: it re-reads an exposition file into
``{(name, labels): value}``, validating names, label syntax, escaping
and histogram invariants (bucket monotonicity, ``+Inf`` == ``_count``)
— strict enough that a file it accepts scrapes cleanly.

:func:`to_json` is the machine-readable snapshot: families with kind,
help, labeled samples and histogram buckets, plus the provenance block.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.errors import ConfigError
from repro.ioutil import open_text
from repro.telemetry.metrics import (
    MetricsRegistry,
    _HistogramChild,
    _NAME_RE,
    _LABEL_RE,
)

PathLike = Union[str, Path]

#: The info-metric carrying run provenance labels.
BUILD_INFO_METRIC = "repro_build_info"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    lines: List[str] = []
    if registry.provenance:
        lines.append(
            f"# HELP {BUILD_INFO_METRIC} Run provenance "
            "(constant 1; identity lives in the labels)."
        )
        lines.append(f"# TYPE {BUILD_INFO_METRIC} gauge")
        pairs = sorted(registry.provenance.items())
        lines.append(f"{BUILD_INFO_METRIC}{_format_labels(pairs)} 1")
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.samples():
            pairs = list(zip(family.label_names, label_values))
            if isinstance(child, _HistogramChild):
                for bound, cumulative in child.cumulative():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    bucket_pairs = pairs + [("le", le)]
                    lines.append(
                        f"{family.name}_bucket{_format_labels(bucket_pairs)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(pairs)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(pairs)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_format_labels(pairs)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: PathLike) -> int:
    """Write the text exposition (gzip when the path ends in ``.gz``);
    returns the number of sample lines."""
    text = to_prometheus(registry)
    with open_text(path, "w") as handle:
        handle.write(text)
    return sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )


# ----------------------------------------------------------------------
# Parsing / validation (the pure-python format checker)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


def _parse_value(text: str, where: str) -> float:
    token = text.strip()
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise ConfigError(f"{where}: unparsable sample value {text!r}") from None


def _parse_labels(raw: str, where: str) -> Tuple[Tuple[str, str], ...]:
    pairs: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(raw):
        match = _LABEL_PAIR_RE.match(raw, pos)
        if match is None:
            raise ConfigError(f"{where}: malformed label set {{{raw}}}")
        pairs.append(
            (match.group("name"), _unescape_label_value(match.group("value")))
        )
        pos = match.end()
    names = [n for n, _ in pairs]
    if len(set(names)) != len(names):
        raise ConfigError(f"{where}: duplicate label in {{{raw}}}")
    return tuple(sorted(pairs))


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Parse (and validate) a text exposition.

    Returns ``{"samples": {(name, labels): value}, "types": {name: kind},
    "helps": {name: text}}`` where ``labels`` is a sorted tuple of
    ``(label, value)`` pairs.  Raises :class:`ConfigError` on any
    formatting violation, including histogram-invariant breaks.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        where = f"line {line_no}"
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            parts = stripped.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ConfigError(f"{where}: unknown metric type {kind!r}")
                if not _NAME_RE.match(parts[2]):
                    raise ConfigError(
                        f"{where}: invalid metric name {parts[2]!r}"
                    )
                if parts[2] in types:
                    raise ConfigError(
                        f"{where}: duplicate TYPE for {parts[2]!r}"
                    )
                types[parts[2]] = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ConfigError(f"{where}: malformed sample line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", where)
        for label_name, _ in labels:
            if not _LABEL_RE.match(label_name):
                raise ConfigError(
                    f"{where}: invalid label name {label_name!r}"
                )
        key = (name, labels)
        if key in samples:
            raise ConfigError(
                f"{where}: duplicate sample {name}{dict(labels)}"
            )
        samples[key] = _parse_value(match.group("value"), where)
    _check_histograms(samples, types)
    return {"samples": samples, "types": types, "helps": helps}


def _check_histograms(samples, types) -> None:
    """Histogram invariants: buckets cumulative, +Inf present == _count."""
    for name, kind in types.items():
        if kind != "histogram":
            continue
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        for (sample_name, labels), value in samples.items():
            if sample_name != f"{name}_bucket":
                continue
            le = dict(labels).get("le")
            if le is None:
                raise ConfigError(f"{name}_bucket sample without le label")
            rest = tuple(p for p in labels if p[0] != "le")
            series.setdefault(rest, []).append(
                (_parse_value(le, f"{name}_bucket le"), value)
            )
        for rest, buckets in series.items():
            buckets.sort(key=lambda pair: pair[0])
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ConfigError(f"{name}: histogram missing +Inf bucket")
            counts = [c for _, c in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise ConfigError(f"{name}: bucket counts not cumulative")
            count_key = (f"{name}_count", rest)
            if count_key in samples and samples[count_key] != counts[-1]:
                raise ConfigError(
                    f"{name}: +Inf bucket {counts[-1]} != _count "
                    f"{samples[count_key]}"
                )


def validate_prometheus_file(path: PathLike) -> int:
    """Parse an exposition file; returns the number of samples."""
    with open_text(path, "r") as handle:
        parsed = parse_prometheus(handle.read())
    if not parsed["samples"]:
        raise ConfigError(f"{path}: exposition file contains no samples")
    return len(parsed["samples"])


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------
def to_json(registry: MetricsRegistry) -> Dict[str, Any]:
    """A JSON-ready snapshot of every family, plus provenance."""
    families: List[Dict[str, Any]] = []
    for family in registry.families():
        entry: Dict[str, Any] = {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "labels": list(family.label_names),
            "samples": [],
        }
        for label_values, child in family.samples():
            sample: Dict[str, Any] = {
                "labels": dict(zip(family.label_names, label_values)),
            }
            if isinstance(child, _HistogramChild):
                sample["buckets"] = [
                    {"le": "+Inf" if math.isinf(b) else b, "count": c}
                    for b, c in child.cumulative()
                ]
                sample["sum"] = child.sum
                sample["count"] = child.count
            else:
                sample["value"] = child.value
            entry["samples"].append(sample)
        families.append(entry)
    return {"provenance": dict(registry.provenance), "metrics": families}


def write_json(registry: MetricsRegistry, path: PathLike) -> int:
    """Write the JSON snapshot (gzip when the path ends in ``.gz``);
    returns the number of families."""
    payload = to_json(registry)
    with open_text(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(payload["metrics"])
