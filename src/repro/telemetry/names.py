"""The canonical metric families every instrumented layer declares.

Instrumentation lives in many modules (`core.system`, `policies.ugpu`,
`sim.engine`, `vm.driver`, `pagemove.engine`, `hbm.controller`,
`cluster.scheduler`, `exec.executor`) and the trace bridge
(:mod:`repro.telemetry.bridge`) must rebuild the *same* series from a
recorded event stream.  Declaring each family through one factory here —
name, help text, labels and buckets in a single place — is what makes
``registry_from_trace()`` equivalence checkable: both sides literally
call the same constructor.

Registry construction is idempotent, so any number of components may
call the same factory; mismatched redeclarations raise ``ConfigError``.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    CYCLE_BUCKETS,
    SECONDS_BUCKETS,
    MetricsRegistry,
)

# ---------------------------------------------------------------------- epoch
EPOCHS_TOTAL = "repro_epochs_total"
EPOCH_CYCLES_TOTAL = "repro_epoch_cycles_total"
EPOCH_DURATION_CYCLES = "repro_epoch_duration_cycles"
INSTRUCTIONS_TOTAL = "repro_instructions_total"
MIGRATION_STALL_CYCLES_TOTAL = "repro_migration_stall_cycles_total"


def epochs_total(reg: MetricsRegistry):
    return reg.counter(EPOCHS_TOTAL, "Simulated epochs completed.")


def epoch_cycles_total(reg: MetricsRegistry):
    return reg.counter(EPOCH_CYCLES_TOTAL, "Simulated cycles covered by epochs.")


def epoch_duration_cycles(reg: MetricsRegistry):
    return reg.histogram(
        EPOCH_DURATION_CYCLES,
        "Per-epoch span in cycles (includes reallocation stretch).",
        buckets=CYCLE_BUCKETS,
    )


def instructions_total(reg: MetricsRegistry):
    return reg.counter(INSTRUCTIONS_TOTAL, "Instructions retired across apps.")


def migration_stall_cycles_total(reg: MetricsRegistry):
    return reg.counter(
        MIGRATION_STALL_CYCLES_TOTAL,
        "Epoch cycles consumed by reallocation/migration windows.",
    )


# --------------------------------------------------------------------- policy
REALLOCATIONS_TOTAL = "repro_reallocations_total"
QOS_INTERVENTIONS_TOTAL = "repro_qos_interventions_total"
MIGRATION_PAGES_TOTAL = "repro_migration_pages_total"
MIGRATION_WINDOW_CYCLES_TOTAL = "repro_migration_window_cycles_total"
POLICY_STP = "repro_policy_stp"
POLICY_ANTT = "repro_policy_antt"


def reallocations_total(reg: MetricsRegistry):
    return reg.counter(
        REALLOCATIONS_TOTAL,
        "Partition decisions by outcome "
        "(apply, suppress = hysteresis-suppressed, membership).",
        labels=("outcome",),
    )


def qos_interventions_total(reg: MetricsRegistry):
    return reg.counter(
        QOS_INTERVENTIONS_TOTAL, "QoS enforcement interventions (Figure 16)."
    )


def migration_pages_total(reg: MetricsRegistry):
    return reg.counter(
        MIGRATION_PAGES_TOTAL,
        "Pages charged to policy migration windows by phase "
        "(eager = lost-channel drain, rebalance = gained-channel fill).",
        labels=("phase",),
    )


def migration_window_cycles_total(reg: MetricsRegistry):
    return reg.counter(
        MIGRATION_WINDOW_CYCLES_TOTAL,
        "Cycles inside policy migration windows by phase.",
        labels=("phase",),
    )


def policy_stp(reg: MetricsRegistry):
    return reg.gauge(
        POLICY_STP, "System throughput (sum of normalized progress).",
        labels=("policy",),
    )


def policy_antt(reg: MetricsRegistry):
    return reg.gauge(
        POLICY_ANTT, "Average normalized turnaround time.", labels=("policy",),
    )


# ---------------------------------------------------------------- open system
OPEN_ARRIVALS_TOTAL = "repro_open_arrivals_total"
OPEN_ADMISSIONS_TOTAL = "repro_open_admissions_total"
OPEN_DEPARTURES_TOTAL = "repro_open_departures_total"
OPEN_QUEUEING_DELAY_CYCLES = "repro_open_queueing_delay_cycles"
OPEN_WAIT_QUEUE_DEPTH = "repro_open_wait_queue_depth"
OPEN_RESIDENT_JOBS = "repro_open_resident_jobs"


def open_arrivals_total(reg: MetricsRegistry):
    return reg.counter(OPEN_ARRIVALS_TOTAL, "Jobs that entered the wait queue.")


def open_admissions_total(reg: MetricsRegistry):
    return reg.counter(OPEN_ADMISSIONS_TOTAL, "Jobs admitted to a slice.")


def open_departures_total(reg: MetricsRegistry):
    return reg.counter(OPEN_DEPARTURES_TOTAL, "Jobs that retired their budget.")


def open_queueing_delay_cycles(reg: MetricsRegistry):
    return reg.histogram(
        OPEN_QUEUEING_DELAY_CYCLES,
        "Cycles between arrival and admission.",
        buckets=CYCLE_BUCKETS,
    )


def open_wait_queue_depth(reg: MetricsRegistry):
    return reg.gauge(
        OPEN_WAIT_QUEUE_DEPTH, "Jobs waiting for a slice (sampled at boundaries)."
    )


def open_resident_jobs(reg: MetricsRegistry):
    return reg.gauge(
        OPEN_RESIDENT_JOBS, "Jobs resident on the GPU (sampled at boundaries)."
    )


# ----------------------------------------------------------------- sim engine
SIM_EVENTS_FIRED_TOTAL = "repro_sim_events_fired_total"
SIM_EVENT_QUEUE_DEPTH = "repro_sim_event_queue_depth"


def sim_events_fired_total(reg: MetricsRegistry):
    return reg.counter(SIM_EVENTS_FIRED_TOTAL, "Discrete events fired.")


def sim_event_queue_depth(reg: MetricsRegistry):
    return reg.gauge(
        SIM_EVENT_QUEUE_DEPTH, "Live events pending in the queue."
    )


# ------------------------------------------------------------------ vm driver
VM_FAULTS_TOTAL = "repro_vm_faults_total"
VM_FAULT_SOFTWARE_CYCLES_TOTAL = "repro_vm_fault_software_cycles_total"


def vm_faults_total(reg: MetricsRegistry):
    return reg.counter(
        VM_FAULTS_TOTAL,
        "Driver faults by kind (demand / lost-channel / rebalance).",
        labels=("kind",),
    )


def vm_fault_software_cycles_total(reg: MetricsRegistry):
    return reg.counter(
        VM_FAULT_SOFTWARE_CYCLES_TOTAL,
        "Software fault-handling cycles charged by the driver.",
    )


# ------------------------------------------------------------ pagemove engine
PAGEMOVE_PAGES_TOTAL = "repro_pagemove_pages_total"
PAGEMOVE_COMMANDS_TOTAL = "repro_pagemove_commands_total"
PAGEMOVE_WINDOW_CYCLES_TOTAL = "repro_pagemove_window_cycles_total"


def pagemove_pages_total(reg: MetricsRegistry):
    return reg.counter(
        PAGEMOVE_PAGES_TOTAL,
        "Pages moved by the migration engine by plan kind (eager / lazy).",
        labels=("kind",),
    )


def pagemove_commands_total(reg: MetricsRegistry):
    return reg.counter(
        PAGEMOVE_COMMANDS_TOTAL,
        "MIGRATION commands issued to HBM controllers.",
    )


def pagemove_window_cycles_total(reg: MetricsRegistry):
    return reg.counter(
        PAGEMOVE_WINDOW_CYCLES_TOTAL,
        "Cycles inside executed migration windows.",
    )


# ------------------------------------------------------------------------ hbm
HBM_REQUESTS_TOTAL = "repro_hbm_requests_total"
HBM_ROW_OUTCOMES_TOTAL = "repro_hbm_row_outcomes_total"
HBM_BANDWIDTH_UTILIZATION = "repro_hbm_bandwidth_utilization"


def hbm_requests_total(reg: MetricsRegistry):
    return reg.counter(
        HBM_REQUESTS_TOTAL,
        "Commands serviced per channel by request kind.",
        labels=("channel", "kind"),
    )


def hbm_row_outcomes_total(reg: MetricsRegistry):
    return reg.counter(
        HBM_ROW_OUTCOMES_TOTAL,
        "Row-buffer outcomes per channel (hit / miss / conflict).",
        labels=("channel", "outcome"),
    )


def hbm_bandwidth_utilization(reg: MetricsRegistry):
    return reg.gauge(
        HBM_BANDWIDTH_UTILIZATION,
        "Achieved / peak channel bandwidth after the last drain.",
        labels=("channel",),
    )


# -------------------------------------------------------------------- cluster
CLUSTER_PLACEMENTS_TOTAL = "repro_cluster_placements_total"
CLUSTER_NODE_FRAGMENTATION = "repro_cluster_node_fragmentation"
CLUSTER_NODE_TENANTS = "repro_cluster_node_tenants"


def cluster_placements_total(reg: MetricsRegistry):
    return reg.counter(
        CLUSTER_PLACEMENTS_TOTAL,
        "Cluster placement events by outcome (placed / rejected / departed).",
        labels=("outcome",),
    )


def cluster_node_fragmentation(reg: MetricsRegistry):
    return reg.gauge(
        CLUSTER_NODE_FRAGMENTATION,
        "Per-node fragmentation score (free slots / capacity).",
        labels=("node",),
    )


def cluster_node_tenants(reg: MetricsRegistry):
    return reg.gauge(
        CLUSTER_NODE_TENANTS, "Tenants resident per node.", labels=("node",),
    )


# ---------------------------------------------------------------------- fleet
FLEET_ROUNDS_TOTAL = "repro_fleet_rounds_total"
FLEET_JOBS_TOTAL = "repro_fleet_jobs_total"
FLEET_WAIT_QUEUE_DEPTH = "repro_fleet_wait_queue_depth"
FLEET_RESIDENT_JOBS = "repro_fleet_resident_jobs"
FLEET_ACTIVE_NODES = "repro_fleet_active_nodes"
FLEET_FRAGMENTATION = "repro_fleet_fragmentation"
FLEET_QUEUEING_DELAY_CYCLES = "repro_fleet_queueing_delay_cycles"
FLEET_ENERGY_JOULES_TOTAL = "repro_fleet_energy_joules_total"


def fleet_rounds_total(reg: MetricsRegistry):
    return reg.counter(
        FLEET_ROUNDS_TOTAL, "Fleet scheduling rounds completed."
    )


def fleet_jobs_total(reg: MetricsRegistry):
    return reg.counter(
        FLEET_JOBS_TOTAL,
        "Fleet job lifecycle events "
        "(arrived / admitted / departed / migrated).",
        labels=("event",),
    )


def fleet_wait_queue_depth(reg: MetricsRegistry):
    return reg.gauge(
        FLEET_WAIT_QUEUE_DEPTH,
        "Jobs waiting for a node slot (sampled at round boundaries).",
    )


def fleet_resident_jobs(reg: MetricsRegistry):
    return reg.gauge(
        FLEET_RESIDENT_JOBS,
        "Jobs resident across the fleet (sampled at round boundaries).",
    )


def fleet_active_nodes(reg: MetricsRegistry):
    return reg.gauge(
        FLEET_ACTIVE_NODES,
        "Nodes with at least one tenant (sampled at round boundaries).",
    )


def fleet_fragmentation(reg: MetricsRegistry):
    return reg.gauge(
        FLEET_FRAGMENTATION,
        "Stranded capacity: free slots on active nodes / fleet capacity.",
    )


def fleet_queueing_delay_cycles(reg: MetricsRegistry):
    return reg.histogram(
        FLEET_QUEUEING_DELAY_CYCLES,
        "Cycles between a fleet job's arrival and its admission.",
        buckets=CYCLE_BUCKETS,
    )


def fleet_energy_joules_total(reg: MetricsRegistry):
    return reg.counter(
        FLEET_ENERGY_JOULES_TOTAL,
        "Fleet energy by component (core_static / core_dynamic / "
        "mem_static / mem_dynamic / migration).",
        labels=("component",),
    )


# ----------------------------------------------------------------------- exec
EXEC_JOBS_TOTAL = "repro_exec_jobs_total"
EXEC_JOBS_RUN_TOTAL = "repro_exec_jobs_run_total"
EXEC_CACHE_HITS_TOTAL = "repro_exec_cache_hits_total"
EXEC_CACHE_MISSES_TOTAL = "repro_exec_cache_misses_total"
EXEC_CACHE_EVICTIONS_TOTAL = "repro_exec_cache_evictions_total"
EXEC_CACHE_SCHEMA_EVICTIONS_TOTAL = "repro_exec_cache_schema_evictions_total"
EXEC_JOB_SECONDS = "repro_exec_job_seconds"
EXEC_WALL_SECONDS_TOTAL = "repro_exec_wall_seconds_total"


def exec_jobs_total(reg: MetricsRegistry):
    return reg.counter(EXEC_JOBS_TOTAL, "Sweep jobs requested.")


def exec_jobs_run_total(reg: MetricsRegistry):
    return reg.counter(EXEC_JOBS_RUN_TOTAL, "Sweep jobs actually executed.")


def exec_cache_hits_total(reg: MetricsRegistry):
    return reg.counter(EXEC_CACHE_HITS_TOTAL, "Result-cache hits.")


def exec_cache_misses_total(reg: MetricsRegistry):
    return reg.counter(EXEC_CACHE_MISSES_TOTAL, "Result-cache misses.")


def exec_cache_evictions_total(reg: MetricsRegistry):
    return reg.counter(EXEC_CACHE_EVICTIONS_TOTAL, "Result-cache evictions.")


def exec_cache_schema_evictions_total(reg: MetricsRegistry):
    return reg.counter(
        EXEC_CACHE_SCHEMA_EVICTIONS_TOTAL,
        "Cache entries discarded because they predate the envelope schema.",
    )


def exec_job_seconds(reg: MetricsRegistry):
    return reg.histogram(
        EXEC_JOB_SECONDS, "In-worker seconds per executed job.",
        buckets=SECONDS_BUCKETS,
    )


def exec_wall_seconds_total(reg: MetricsRegistry):
    return reg.counter(EXEC_WALL_SECONDS_TOTAL, "End-to-end sweep wall seconds.")


# --------------------------------------------------------------------- worker
# Families captured *inside* pool workers by FleetShardJob.run_observed and
# merged orchestrator-side (exact counter sums, deterministic in job order).
WORKER_NODE_ROUNDS_TOTAL = "repro_worker_node_rounds_total"
WORKER_TENANT_ROUNDS_TOTAL = "repro_worker_tenant_rounds_total"
WORKER_INSTRUCTIONS_TOTAL = "repro_worker_instructions_total"
WORKER_DRAM_BYTES_TOTAL = "repro_worker_dram_bytes_total"
WORKER_DEPARTURES_TOTAL = "repro_worker_departures_total"
WORKER_ACTIVE_CYCLES_TOTAL = "repro_worker_active_cycles_total"


def worker_node_rounds_total(reg: MetricsRegistry):
    return reg.counter(
        WORKER_NODE_ROUNDS_TOTAL,
        "Node-rounds simulated inside pool workers.",
    )


def worker_tenant_rounds_total(reg: MetricsRegistry):
    return reg.counter(
        WORKER_TENANT_ROUNDS_TOTAL,
        "Tenant-rounds simulated inside pool workers, by benchmark.",
        labels=("benchmark",),
    )


def worker_instructions_total(reg: MetricsRegistry):
    return reg.counter(
        WORKER_INSTRUCTIONS_TOTAL,
        "Instructions retired by worker-side node physics.",
    )


def worker_dram_bytes_total(reg: MetricsRegistry):
    return reg.counter(
        WORKER_DRAM_BYTES_TOTAL,
        "DRAM traffic accounted by worker-side node physics.",
    )


def worker_departures_total(reg: MetricsRegistry):
    return reg.counter(
        WORKER_DEPARTURES_TOTAL,
        "Tenants that retired their budget inside a worker round.",
    )


def worker_active_cycles_total(reg: MetricsRegistry):
    return reg.counter(
        WORKER_ACTIVE_CYCLES_TOTAL,
        "Tenant-active cycles accumulated inside worker rounds.",
    )


# --------------------------------------------------------------------- health
HEALTH_INCIDENTS_TOTAL = "repro_health_incidents_total"
HEALTH_STRAGGLER_RATIO = "repro_health_straggler_ratio"
HEALTH_WAIT_STALL_ROUNDS = "repro_health_wait_stall_rounds"
HEALTH_CACHE_HIT_RATE = "repro_health_cache_hit_rate"


def health_incidents_total(reg: MetricsRegistry):
    return reg.counter(
        HEALTH_INCIDENTS_TOTAL,
        "Fleet health incidents by kind "
        "(straggler / wait_stall / cache_collapse).",
        labels=("kind",),
    )


def health_straggler_ratio(reg: MetricsRegistry):
    return reg.gauge(
        HEALTH_STRAGGLER_RATIO,
        "Worst worker wall-time / round median (sampled per round).",
    )


def health_wait_stall_rounds(reg: MetricsRegistry):
    return reg.gauge(
        HEALTH_WAIT_STALL_ROUNDS,
        "Consecutive rounds of monotonically rising wait-queue depth.",
    )


def health_cache_hit_rate(reg: MetricsRegistry):
    return reg.gauge(
        HEALTH_CACHE_HIT_RATE,
        "Windowed shard-cache hit rate observed by the health monitor.",
    )


# ------------------------------------------------------------ perf-model memo
PERF_MEMO_LOOKUPS_TOTAL = "repro_perf_memo_lookups_total"
PERF_MEMO_ENTRIES = "repro_perf_memo_entries"


def perf_memo_lookups_total(reg: MetricsRegistry):
    return reg.counter(
        PERF_MEMO_LOOKUPS_TOTAL,
        "Throughput-memo lookups by outcome (hit / miss).",
        labels=("outcome",),
    )


def perf_memo_entries(reg: MetricsRegistry):
    return reg.gauge(
        PERF_MEMO_ENTRIES,
        "Entries held by the LRU-bounded throughput memo.",
    )


# ---------------------------------------------------------------------- trace
TRACE_DROPPED_EVENTS = "repro_trace_dropped_events"


def trace_dropped_events(reg: MetricsRegistry):
    return reg.gauge(
        TRACE_DROPPED_EVENTS,
        "Events evicted from the trace ring buffer (truncation is not silent).",
    )
