"""Labeled metrics registry: the aggregate counterpart of :mod:`repro.trace`.

The trace layer answers *when* something happened; this layer answers
*how much and how fast*, the way a production scheduler is scraped.  The
design follows the Prometheus client-library data model, implemented on
the stdlib only:

* a :class:`MetricsRegistry` owns named *families*
  (:class:`Counter`, :class:`Gauge`, :class:`Histogram`), each declared
  once with a fixed tuple of label *names*;
* ``family.labels(policy="ugpu")`` resolves one *child* keyed by the
  frozen tuple of label values — the hot-path object instrumentation
  holds on to, so an ``inc()`` is one dict-free attribute bump;
* a family declared with no labels acts as its own child (``inc`` /
  ``set`` / ``observe`` directly on it);
* :class:`Histogram` uses fixed, monotonically increasing bucket
  boundaries (Prometheus semantics: ``le`` is an inclusive upper bound,
  with an implicit ``+Inf`` bucket);
* a per-family cardinality guard (:attr:`MetricsRegistry.max_label_sets`)
  refuses runaway label explosions instead of silently eating memory;
* :class:`NullRegistry` is a no-op drop-in so instrumentation can be
  left in place unconditionally — mirroring the ``tracer=None`` pattern,
  every instrumented component also defaults ``metrics=None`` and guards
  each update with one ``is not None`` check, keeping the disabled path
  byte-identical and overhead-free.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for cycle-valued quantities (queueing delay,
#: epoch spans): sub-epoch up to the paper's 25M-cycle horizon.
CYCLE_BUCKETS: Tuple[float, ...] = (
    100_000.0, 500_000.0, 1_000_000.0, 2_500_000.0, 5_000_000.0,
    10_000_000.0, 25_000_000.0,
)

#: Default buckets for wall-clock seconds (the exec layer).
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ConfigError(f"invalid metric name {name!r}")
    return name


def _check_labels(names: Sequence[str]) -> Tuple[str, ...]:
    out = tuple(names)
    for label in out:
        if not _LABEL_RE.match(label or ""):
            raise ConfigError(f"invalid label name {label!r}")
        if label.startswith("__") or label == "le":
            raise ConfigError(f"reserved label name {label!r}")
    if len(set(out)) != len(out):
        raise ConfigError(f"duplicate label names in {out!r}")
    return out


class _Child:
    """One (family, label-values) time series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter cannot decrease (inc {amount})")
        self.value += amount


class _GaugeChild(_Child):
    __slots__ = ()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """Fixed-boundary histogram series (cumulative on exposition)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; last slot is the +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ConfigError("cannot observe NaN")
        lo, hi = 0, len(self.bounds)
        # Leftmost bucket whose bound >= value (le is inclusive).
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs ending at +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out


class MetricFamily:
    """A named metric plus every labeled child it has spawned."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        self.registry = registry
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(label_names)
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            self._default = self._resolve(())

    def _new_child(self):
        raise NotImplementedError

    def _resolve(self, values: Tuple[str, ...]):
        child = self._children.get(values)
        if child is None:
            if len(self._children) >= self.registry.max_label_sets:
                raise ConfigError(
                    f"metric {self.name!r} exceeded the cardinality guard "
                    f"({self.registry.max_label_sets} label sets); "
                    "a label is probably carrying an unbounded value"
                )
            child = self._new_child()
            self._children[values] = child
        return child

    def labels(self, *values, **kwargs):
        """The child for one concrete label-value assignment.

        Accepts positional values in declaration order, or keywords.
        Values are coerced to ``str`` so the key is a frozen tuple of
        strings regardless of the caller's types.
        """
        if kwargs:
            if values:
                raise ConfigError("pass labels positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.label_names)
            except KeyError as exc:
                raise ConfigError(
                    f"metric {self.name!r} is missing label {exc.args[0]!r}"
                ) from None
            if len(kwargs) != len(self.label_names):
                extra = set(kwargs) - set(self.label_names)
                raise ConfigError(
                    f"metric {self.name!r} got unknown labels {sorted(extra)}"
                )
        if len(values) != len(self.label_names):
            raise ConfigError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {len(values)} values"
            )
        return self._resolve(tuple(str(v) for v in values))

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label_values, child) pairs in insertion order."""
        return list(self._children.items())

    # Label-free convenience: the family proxies its single child.
    def _default_child(self):
        if self.label_names:
            raise ConfigError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "resolve a child with .labels(...) first"
            )
        return self._default


class Counter(MetricFamily):
    """A monotonically increasing count."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(MetricFamily):
    """A value that can go up and down (a point-in-time sample)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(MetricFamily):
    """Fixed-bucket distribution (Prometheus cumulative semantics)."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = CYCLE_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        if any(b >= n for b, n in zip(bounds, bounds[1:])):
            raise ConfigError(
                f"histogram {name!r} buckets must strictly increase: {bounds}"
            )
        if any(math.isnan(b) for b in bounds):
            raise ConfigError(f"histogram {name!r} buckets cannot be NaN")
        if bounds and math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
            if not bounds:
                raise ConfigError(
                    f"histogram {name!r} needs a finite bucket below +Inf"
                )
        self.buckets = bounds
        super().__init__(registry, name, help, label_names)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def sum(self) -> float:
        return self._default_child().sum

    @property
    def count(self) -> int:
        return self._default_child().count


class MetricsRegistry:
    """The mutable home of every metric family one run produces.

    Families are created idempotently: asking twice for the same name
    returns the same object, provided kind, labels and (for histograms)
    buckets agree — so independent components can share a series without
    coordinating construction order.  ``max_label_sets`` bounds the
    children any one family may spawn (the cardinality guard).

    ``epoch_boundary`` is the sampling hook: the epoch-level runner calls
    it once per simulated epoch, and observers (the CSV sampler, a live
    dashboard) snapshot whatever series they follow.
    """

    enabled = True

    def __init__(self, max_label_sets: int = 1024) -> None:
        if max_label_sets < 1:
            raise ConfigError("max_label_sets must be >= 1")
        self.max_label_sets = max_label_sets
        self._families: Dict[str, MetricFamily] = {}
        self._observers: List = []
        self._lock = threading.Lock()
        #: Free-form provenance mapping attached to every export (see
        #: :mod:`repro.telemetry.provenance`).
        self.provenance: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Family constructors
    # ------------------------------------------------------------------
    def _family(self, cls, name: str, help: str,
                label_names: Sequence[str], **kwargs) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.label_names != tuple(label_names):
                    raise ConfigError(
                        f"metric {name!r} label mismatch: "
                        f"{existing.label_names} vs {tuple(label_names)}"
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None and tuple(
                    float(b) for b in buckets
                ) != getattr(existing, "buckets", None):
                    raise ConfigError(
                        f"histogram {name!r} bucket mismatch"
                    )
                return existing
            family = cls(self, name, help, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = CYCLE_BUCKETS) -> Histogram:
        return self._family(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        """Every family, in registration order."""
        return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def value(self, name: str, **labels) -> float:
        """Convenience: one child's current value (0.0 if never touched).

        For histograms returns the observation count.
        """
        family = self._families.get(name)
        if family is None:
            return 0.0
        values = tuple(str(labels[n]) for n in family.label_names)
        child = family._children.get(values)
        if child is None:
            return 0.0
        if isinstance(child, _HistogramChild):
            return float(child.count)
        return child.value

    # ------------------------------------------------------------------
    # Epoch-boundary sampling
    # ------------------------------------------------------------------
    def add_epoch_observer(self, observer) -> None:
        """``observer(registry, epoch_index, cycle)`` fires per epoch."""
        self._observers.append(observer)

    def epoch_boundary(self, epoch_index: int, cycle: float) -> None:
        for observer in self._observers:
            observer(self, epoch_index, cycle)


class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def labels(self, *values, **kwargs) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def samples(self) -> List:
        return []


NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing.

    Instrumented components treat it exactly like a real registry — the
    same attribute loads and calls — but every family is the shared
    no-op metric, so enabling the plumbing without an actual consumer is
    free.  (Components also accept ``metrics=None`` and skip the calls
    entirely; this class exists for call sites that want to avoid the
    ``None`` branch.)
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()):
        return NULL_METRIC

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()):
        return NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = CYCLE_BUCKETS):
        return NULL_METRIC

    def epoch_boundary(self, epoch_index: int, cycle: float) -> None:
        pass
