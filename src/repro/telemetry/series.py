"""Epoch-boundary CSV time series.

The Prometheus/JSON exporters snapshot a finished run; this module
captures the *trajectory*.  A :class:`CsvSampler` registers as an epoch
observer on a :class:`~repro.telemetry.metrics.MetricsRegistry` and, at
every epoch boundary the runner announces, appends one long-format row
per live series::

    epoch,cycle,metric,labels,value

Histogram series are flattened to ``<name>_sum`` and ``<name>_count``
rows (enough to reconstruct a running mean, which is what dashboards
plot).  Labels are packed as ``key=value`` pairs joined by ``;`` so the
file stays a plain 5-column CSV.  Provenance is written as ``#``-prefixed
comment lines ahead of the header; :func:`read_series` skips them, giving
``examples/live_dashboard.py`` and the tests one shared reader.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from repro.ioutil import open_text
from repro.telemetry.metrics import MetricsRegistry, _HistogramChild

PathLike = Union[str, Path]

HEADER = ("epoch", "cycle", "metric", "labels", "value")


def format_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    return ";".join(f"{n}={v}" for n, v in zip(names, values))


def parse_labels(packed: str) -> Dict[str, str]:
    if not packed:
        return {}
    out: Dict[str, str] = {}
    for pair in packed.split(";"):
        name, _, value = pair.partition("=")
        out[name] = value
    return out


class CsvSampler:
    """Appends one row per live series at every epoch boundary.

    Usage::

        registry = MetricsRegistry()
        sampler = CsvSampler("series.csv")
        sampler.attach(registry)
        ...  # run the instrumented simulation
        sampler.close()
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None
        self._writer = None
        self.rows_written = 0

    def attach(self, registry: MetricsRegistry) -> "CsvSampler":
        self._open(registry)
        registry.add_epoch_observer(self)
        return self

    def _open(self, registry: MetricsRegistry) -> None:
        if self._handle is not None:
            return
        self._handle = open_text(self.path, "w", newline="")
        for key, value in sorted(registry.provenance.items()):
            self._handle.write(f"# {key}={value}\n")
        self._writer = csv.writer(self._handle)
        self._writer.writerow(HEADER)

    def __call__(self, registry: MetricsRegistry, epoch_index: int,
                 cycle: float) -> None:
        self._open(registry)
        rows: List[Tuple] = []
        for family in registry.families():
            for label_values, child in family.samples():
                labels = format_labels(family.label_names, label_values)
                if isinstance(child, _HistogramChild):
                    rows.append(
                        (epoch_index, cycle, f"{family.name}_sum", labels,
                         child.sum)
                    )
                    rows.append(
                        (epoch_index, cycle, f"{family.name}_count", labels,
                         child.count)
                    )
                else:
                    rows.append(
                        (epoch_index, cycle, family.name, labels, child.value)
                    )
        self._writer.writerows(rows)
        self._handle.flush()
        self.rows_written += len(rows)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._writer = None


class SeriesRow:
    """One parsed CSV row."""

    __slots__ = ("epoch", "cycle", "metric", "labels", "value")

    def __init__(self, epoch: int, cycle: float, metric: str,
                 labels: Dict[str, str], value: float) -> None:
        self.epoch = epoch
        self.cycle = cycle
        self.metric = metric
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SeriesRow(epoch={self.epoch}, metric={self.metric!r}, "
            f"labels={self.labels}, value={self.value})"
        )


def read_series(path: PathLike, strict: bool = True) -> List[SeriesRow]:
    """Parse a sampler CSV back into rows (comments/header skipped).

    With ``strict=False``, malformed rows — short records or unparsable
    fields, as left by a writer killed mid-row or read mid-flush by a
    live dashboard — are skipped instead of raising.
    """
    rows: List[SeriesRow] = []
    with open_text(path, "r", newline="") as handle:
        reader = csv.reader(
            line for line in handle if not line.startswith("#")
        )
        for record in reader:
            if not record or record[0] == "epoch":
                continue
            try:
                epoch, cycle, metric, labels, value = record
                rows.append(
                    SeriesRow(int(epoch), float(cycle), metric,
                              parse_labels(labels), float(value))
                )
            except ValueError:
                if strict:
                    raise
    return rows


def read_provenance(path: PathLike) -> Dict[str, str]:
    """The ``#``-comment provenance block of a sampler CSV."""
    out: Dict[str, str] = {}
    with open_text(path, "r") as handle:
        for line in handle:
            if not line.startswith("#"):
                break
            key, _, value = line[1:].strip().partition("=")
            out[key.strip()] = value
    return out


def series_values(rows: List[SeriesRow], metric: str,
                  **labels: str) -> List[Tuple[int, float]]:
    """``(epoch, value)`` pairs of one metric, filtered by labels."""
    out: List[Tuple[int, float]] = []
    for row in rows:
        if row.metric != metric:
            continue
        if any(row.labels.get(k) != str(v) for k, v in labels.items()):
            continue
        out.append((row.epoch, row.value))
    return out
