"""Run provenance: who produced this series, from what tree, on what box.

Exported metric files outlive the working tree that produced them; six
months later nobody remembers which commit a ``series.csv`` came from.
:func:`collect_provenance` captures the attribution snapshot once per
process — git SHA (plus a ``-dirty`` suffix when the tree has local
edits), package version, Python version, platform — and
:func:`config_hash` folds an arbitrary run configuration into a stable
SHA-256 via the same canonical :func:`~repro.exec.jobs.fingerprint` the
result cache keys on.  Everything is failure-tolerant: outside a git
checkout the SHA is simply ``"unknown"``.
"""

from __future__ import annotations

import hashlib
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

_GIT_CACHE: Dict[str, str] = {}


def _package_version() -> str:
    # Imported lazily: this module is reachable from repro/__init__ via
    # the instrumented layers, so a top-level import would be circular.
    try:
        from repro import __version__
        return __version__
    except ImportError:  # pragma: no cover - partial-init fallback
        return "unknown"


def _git_describe() -> str:
    """``<sha12>`` or ``<sha12>-dirty``; ``"unknown"`` outside a checkout."""
    cached = _GIT_CACHE.get("sha")
    if cached is not None:
        return cached
    sha = "unknown"
    try:
        repo_dir = str(Path(__file__).resolve().parent)
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=5,
        )
        if head.returncode == 0:
            sha = head.stdout.strip()[:12]
            status = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=repo_dir, capture_output=True, text=True, timeout=5,
            )
            if status.returncode == 0 and status.stdout.strip():
                sha += "-dirty"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    _GIT_CACHE["sha"] = sha
    return sha


def config_hash(config: Any = None, **extra: Any) -> str:
    """A 16-hex-digit digest of a run configuration.

    Built on :func:`repro.exec.jobs.fingerprint`, so two processes that
    would hit the same sweep-cache entry also report the same hash.
    Unfingerprintable values degrade to ``repr`` rather than failing a
    run over its own attribution.
    """
    from repro.exec.jobs import fingerprint

    parts = []
    for label, value in (("config", config), *sorted(extra.items())):
        try:
            parts.append(f"{label}={fingerprint(value)}")
        except Exception:
            parts.append(f"{label}={value!r}")
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def collect_provenance(config: Any = None,
                       **extra: Any) -> Dict[str, str]:
    """The attribution mapping attached to every telemetry export.

    Keys: ``git_sha``, ``repro_version``, ``python_version``,
    ``platform``, ``config_hash`` — plus any extra keyword pairs the
    caller wants stamped in (policy name, mix, seed).
    """
    info = {
        "git_sha": _git_describe(),
        "repro_version": _package_version(),
        "python_version": platform.python_version(),
        "platform": sys.platform,
        "config_hash": config_hash(config),
    }
    for key, value in extra.items():
        info[str(key)] = str(value)
    return info


def stamp(registry, config: Any = None, **extra: Any) -> None:
    """Attach provenance to ``registry`` (no-op for a null registry)."""
    if registry is None or not getattr(registry, "enabled", False):
        return
    registry.provenance.update(collect_provenance(config, **extra))
