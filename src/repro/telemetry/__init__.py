"""Telemetry: labeled metrics, exposition formats, and live monitoring.

The aggregate counterpart of :mod:`repro.trace`.  Quickstart::

    from repro import MetricsRegistry, MultitaskSystem, UGPUPolicy
    from repro.telemetry import to_prometheus

    registry = MetricsRegistry()
    MultitaskSystem(apps, policy=UGPUPolicy(), metrics=registry).run()
    print(to_prometheus(registry))

See ``docs/tutorial.md`` ("Watching a run: the telemetry layer") for the
scrape-endpoint and CSV-series workflows.
"""

from repro.telemetry.bridge import fold_exec_stats, registry_from_trace
from repro.telemetry.merge import merge_registry, snapshot_registry
from repro.telemetry.exposition import (
    BUILD_INFO_METRIC,
    parse_prometheus,
    to_json,
    to_prometheus,
    validate_prometheus_file,
    write_json,
    write_prometheus,
)
from repro.telemetry.metrics import (
    CYCLE_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.provenance import collect_provenance, config_hash, stamp
from repro.telemetry.series import (
    CsvSampler,
    read_provenance,
    read_series,
    series_values,
)
from repro.telemetry.server import MetricsServer

__all__ = [
    "BUILD_INFO_METRIC",
    "CYCLE_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "CsvSampler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NullRegistry",
    "collect_provenance",
    "config_hash",
    "fold_exec_stats",
    "merge_registry",
    "parse_prometheus",
    "read_provenance",
    "read_series",
    "registry_from_trace",
    "series_values",
    "snapshot_registry",
    "stamp",
    "to_json",
    "to_prometheus",
    "validate_prometheus_file",
    "write_json",
    "write_prometheus",
]
