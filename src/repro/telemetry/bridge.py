"""Derive the canonical metrics from a recorded trace.

:func:`registry_from_trace` is the offline twin of live instrumentation:
given the event stream a :class:`~repro.trace.recorder.TraceRecorder`
captured (or a re-read JSONL file), it rebuilds the same metric families
the instrumented components would have populated in a live run — same
names, same labels, same buckets, because both sides declare through
:mod:`repro.telemetry.names`.  That makes old traces scrapeable
after the fact (``repro metrics --from-trace run.jsonl``) and gives the
test suite an equivalence oracle: live registry == bridged registry on
the same run, modulo live-only point samples (queue depths sampled
mid-run) and ring-buffer drops.

:func:`fold_exec_stats` is the small sibling for the sweep executor,
folding an :class:`~repro.exec.stats.ExecStats` into the registry.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.telemetry import names
from repro.telemetry.metrics import MetricsRegistry
from repro.trace.recorder import KIND_SPAN, TraceEvent


def registry_from_trace(
    events: Sequence[TraceEvent],
    dropped_events: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold ``events`` into a (new or provided) metrics registry.

    Derivable families are exact reconstructions of what live
    instrumentation counts; queue-depth gauges are reconstructed from
    conservation (waiting = arrivals - admissions, resident =
    admissions - departures), which matches the live end-of-run sample.
    ``dropped_events`` (from ``TraceRecorder.dropped``) is exported so a
    bridged registry never hides that its input was truncated.
    """
    reg = registry if registry is not None else MetricsRegistry()

    epochs = names.epochs_total(reg)
    epoch_cycles = names.epoch_cycles_total(reg)
    epoch_hist = names.epoch_duration_cycles(reg)
    instructions = names.instructions_total(reg)
    stall = names.migration_stall_cycles_total(reg)
    reallocs = names.reallocations_total(reg)
    qos = names.qos_interventions_total(reg)
    policy_pages = names.migration_pages_total(reg)
    policy_windows = names.migration_window_cycles_total(reg)
    arrivals = names.open_arrivals_total(reg)
    admissions = names.open_admissions_total(reg)
    departures = names.open_departures_total(reg)
    queue_delay = names.open_queueing_delay_cycles(reg)
    faults = names.vm_faults_total(reg)
    fault_cycles = names.vm_fault_software_cycles_total(reg)
    sim_events = names.sim_events_fired_total(reg)
    cache_hits = names.exec_cache_hits_total(reg)
    cache_misses = names.exec_cache_misses_total(reg)
    jobs_run = names.exec_jobs_run_total(reg)
    job_seconds = names.exec_job_seconds(reg)

    for event in events:
        category = event.category
        if category == "epoch":
            epochs.inc()
            span = event.duration if event.kind == KIND_SPAN else 0.0
            epoch_cycles.inc(span)
            epoch_hist.observe(span)
            instructions.inc(float(event.args.get("instructions", 0.0)))
            stall.inc(float(event.args.get("migration_cycles", 0.0)))
        elif category == "realloc":
            if event.name in ("apply", "suppress", "membership"):
                reallocs.labels(outcome=event.name).inc()
        elif category == "qos":
            qos.inc()
        elif category == "migration":
            if event.name in ("eager", "rebalance"):
                policy_pages.labels(phase=event.name).inc(
                    float(event.args.get("pages", 0.0))
                )
                policy_windows.labels(phase=event.name).inc(event.duration)
        elif category == "fault":
            faults.labels(kind=event.name).inc()
            fault_cycles.inc(float(event.args.get("software_cycles", 0.0)))
        elif category == "arrival":
            arrivals.inc()
        elif category == "admission":
            admissions.inc()
            delay = event.args.get("queueing_delay")
            if delay is not None:
                queue_delay.observe(float(delay))
        elif category == "departure":
            departures.inc()
        elif category == "event":
            sim_events.inc()
        elif category == "cache":
            if event.name == "hit":
                cache_hits.inc()
            elif event.name == "miss":
                cache_misses.inc()
        elif category == "job":
            jobs_run.inc()
            job_seconds.observe(event.duration)

    # Depth gauges by conservation: equal to the live end-of-run sample.
    names.open_wait_queue_depth(reg).set(
        max(0.0, arrivals.value - admissions.value)
    )
    names.open_resident_jobs(reg).set(
        max(0.0, admissions.value - departures.value)
    )
    names.trace_dropped_events(reg).set(dropped_events)
    return reg


def fold_exec_stats(registry: MetricsRegistry, stats) -> MetricsRegistry:
    """Fold one :class:`~repro.exec.stats.ExecStats` into ``registry``."""
    if registry is None or not getattr(registry, "enabled", False):
        return registry
    names.exec_jobs_total(registry).inc(stats.jobs_total)
    names.exec_jobs_run_total(registry).inc(stats.jobs_run)
    names.exec_cache_hits_total(registry).inc(stats.cache_hits)
    names.exec_cache_misses_total(registry).inc(
        max(0, stats.jobs_total - stats.cache_hits)
    )
    names.exec_cache_evictions_total(registry).inc(stats.cache_evictions)
    names.exec_cache_schema_evictions_total(registry).inc(
        getattr(stats, "cache_schema_evictions", 0)
    )
    names.exec_wall_seconds_total(registry).inc(stats.wall_seconds)
    job_hist = names.exec_job_seconds(registry)
    for seconds in stats.job_seconds:
        job_hist.observe(seconds)
    return registry
