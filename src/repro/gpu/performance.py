"""Analytic two-roofline performance model.

This is the substitution for cycle-level GPGPU-sim (see DESIGN.md): a
kernel's throughput on a slice of ``s`` SMs and ``m`` memory channels is
the minimum of

* a **compute roofline** — ``s * ipc_per_sm`` (SMs issue at their peak
  rate when memory never stalls them), and
* a **bandwidth roofline** — the LLC-level data bandwidth the slice's
  memory side can supply, divided by the kernel's bytes per instruction.

The bandwidth roofline follows the paper's Equation 2: the slice's LLC
slices (two per channel) serve hits; misses are bounded by the channels'
DRAM bandwidth.  The hard ``min`` reproduces the piecewise-linear scaling
of Figures 2 and 3 exactly: compute-bound kernels scale with SMs and are
flat in channels until the supply knee; memory-bound kernels scale with
channels and are flat in SMs until too few SMs remain to cover the
latency (the compute roofline drops below the bandwidth one).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel


@dataclass(frozen=True)
class SliceThroughput:
    """Throughput of one kernel on one GPU slice.

    Attributes
    ----------
    ipc:
        Achieved instructions per GPU cycle over the whole slice.
    compute_roof, bandwidth_roof:
        The two roofline values (instructions/cycle).
    demand_bytes_per_cycle:
        Equation 1's per-slice bandwidth demand at the ideal issue rate.
    supply_bytes_per_cycle:
        Equation 2's LLC-level bandwidth supply of the slice.
    dram_bytes_per_cycle:
        DRAM traffic actually generated at the achieved IPC.
    llc_hit_rate:
        Hit rate at the slice's LLC capacity.
    """

    ipc: float
    compute_roof: float
    bandwidth_roof: float
    mlp_roof: float
    demand_bytes_per_cycle: float
    supply_bytes_per_cycle: float
    dram_bytes_per_cycle: float
    llc_hit_rate: float

    @property
    def memory_bound(self) -> bool:
        """True when the memory-side supply binds (demand >= supply)."""
        return self.bandwidth_roof < min(self.compute_roof, self.mlp_roof)

    @property
    def demand_supply_ratio(self) -> float:
        """Degree of bandwidth demand (the sort key of the partitioning
        algorithm's part (a)); > 1 means memory-bound."""
        if self.supply_bytes_per_cycle <= 0:
            return float("inf") if self.demand_bytes_per_cycle > 0 else 0.0
        return self.demand_bytes_per_cycle / self.supply_bytes_per_cycle


class PerformanceModel:
    """Evaluate kernels on arbitrary (SMs, channels) slices."""

    #: Default LRU bound on the throughput memo: comfortably above
    #: (#kernels x #distinct slice shapes) for any single run, small
    #: enough that a long sweep over thousands of kernels cannot grow
    #: the memo without bound.
    DEFAULT_MEMO_CAPACITY = 65_536

    def __init__(self, config: Optional[GPUConfig] = None,
                 memo_capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        if memo_capacity < 1:
            raise ConfigError(
                f"memo_capacity must be >= 1, got {memo_capacity}")
        self.config = config
        # throughput() is pure in (kernel, sms, channels) for a fixed
        # config, and the epoch loop re-evaluates the same slice for
        # every epoch a kernel runs, so memoize.  Kernel is a frozen
        # (hashable) dataclass and SliceThroughput is frozen, so shared
        # results are safe.  Keyed by the kernel object itself — the dict
        # holds a reference, so ids cannot be recycled under us — and
        # LRU-bounded so arbitrarily long sweeps stay at fixed memory.
        self._throughput_memo: "OrderedDict" = OrderedDict()
        self._memo_capacity = memo_capacity
        self.memo_hits = 0
        self.memo_misses = 0

    # ------------------------------------------------------------------
    # Memo management
    # ------------------------------------------------------------------
    @property
    def memo_size(self) -> int:
        """Entries currently held by the throughput memo."""
        return len(self._throughput_memo)

    def clear_memo(self) -> None:
        """Drop every memoized throughput.

        Must be called whenever ``self.config`` is mutated in place
        (memoized results would otherwise reflect the old parameters);
        the hit/miss counters survive so telemetry stays cumulative.
        """
        self._throughput_memo.clear()

    def _memo_store(self, key, result: SliceThroughput) -> SliceThroughput:
        memo = self._throughput_memo
        memo[key] = result
        if len(memo) > self._memo_capacity:
            memo.popitem(last=False)
        return result

    # ------------------------------------------------------------------
    # Equation 1: per-slice bandwidth demand
    # ------------------------------------------------------------------
    def demand_bytes_per_cycle(self, kernel: Kernel, num_sms: int) -> float:
        """``BW_SM * s``: LLC-level bytes per GPU cycle the slice's SMs
        would consume at their ideal stall-free issue rate."""
        line = self.config.llc_line_bytes
        return num_sms * kernel.ipc_per_sm * (kernel.apki_llc / 1000.0) * line

    # ------------------------------------------------------------------
    # Equation 2: per-slice bandwidth supply
    # ------------------------------------------------------------------
    def supply_bytes_per_cycle(self, kernel: Kernel, num_channels: int) -> float:
        """LLC-level bytes per GPU cycle ``num_channels`` channels (plus
        their co-located LLC slices) can supply to this kernel.

        The paper's Equation 2 per channel:
        ``H * B_LLC + min((1-H) * B_LLC, B_MEM)`` — hits stream at LLC
        bandwidth, misses at the smaller of the miss stream and the
        channel's DRAM bandwidth.
        """
        if num_channels <= 0:
            return 0.0
        cfg = self.config
        hit = kernel.hit_rate_at(num_channels * cfg.llc_bytes_per_channel)
        llc_bw_ch = (
            cfg.llc_slices_per_channel * cfg.llc_slice_bandwidth_bytes_per_cycle()
        )
        mem_bw_ch = cfg.channel_bandwidth_bytes_per_cycle()
        per_channel = hit * llc_bw_ch + min((1.0 - hit) * llc_bw_ch, mem_bw_ch)
        return num_channels * per_channel

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def throughput(self, kernel: Kernel, num_sms: int, num_channels: int) -> SliceThroughput:
        """Kernel throughput on a slice of (num_sms, num_channels)."""
        key = (kernel, num_sms, num_channels)
        memo = self._throughput_memo
        cached = memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            memo.move_to_end(key)
            return cached
        self.memo_misses += 1
        if num_sms < 0 or num_channels < 0:
            raise ConfigError("slice sizes must be non-negative")
        cfg = self.config
        line = cfg.llc_line_bytes
        bytes_per_instr = (kernel.apki_llc / 1000.0) * line
        hit = kernel.hit_rate_at(num_channels * cfg.llc_bytes_per_channel)

        compute_roof = num_sms * kernel.ipc_per_sm
        supply = self.supply_bytes_per_cycle(kernel, num_channels)
        if bytes_per_instr > 0:
            bandwidth_roof = supply / bytes_per_instr
            # MLP ceiling: achieved bandwidth is bounded by the in-flight
            # capacity of the slice, which scales with the geometric mean
            # of source (SM MSHRs) and sink (channel queues) parallelism —
            # Figure 3b's decline below ~20 SMs.
            draw = cfg.draw_bytes_per_cycle(num_sms, num_channels, hit)
            mlp_roof = draw / bytes_per_instr
        else:
            bandwidth_roof = float("inf")
            mlp_roof = float("inf")

        ipc = min(compute_roof, bandwidth_roof, mlp_roof)
        if num_sms == 0 or (num_channels == 0 and bytes_per_instr > 0):
            ipc = 0.0
        return self._memo_store(key, SliceThroughput(
            ipc=ipc,
            compute_roof=compute_roof,
            bandwidth_roof=bandwidth_roof,
            mlp_roof=mlp_roof,
            demand_bytes_per_cycle=self.demand_bytes_per_cycle(kernel, num_sms),
            supply_bytes_per_cycle=supply,
            dram_bytes_per_cycle=ipc * bytes_per_instr * (1.0 - hit),
            llc_hit_rate=hit,
        ))

    def throughput_batch(self, kernels: Sequence[Kernel],
                         sms: Sequence[int],
                         channels: Sequence[int]) -> List[SliceThroughput]:
        """Vectorized :meth:`throughput` over a batch of slices.

        Bit-identical to calling :meth:`throughput` per element (the
        numpy kernel backend relies on this); requires numpy.
        """
        from repro.fastpath.batch import compute_batch

        return compute_batch(self, kernels, sms, channels)

    def alone_ipc(self, kernel: Kernel) -> float:
        """IPC with the whole GPU (the :math:`IPC^{alone}` of Equations
        3-4)."""
        return self.throughput(
            kernel, self.config.num_sms, self.config.num_channels
        ).ipc

    def normalized_progress(self, kernel: Kernel, num_sms: int,
                            num_channels: int) -> float:
        """Slice IPC normalized to the whole-GPU IPC (the paper's NP
        metric used for QoS targets)."""
        alone = self.alone_ipc(kernel)
        if alone <= 0:
            return 0.0
        return self.throughput(kernel, num_sms, num_channels).ipc / alone
