"""Kernel and application models.

A :class:`Kernel` is characterized the way UGPU's profiler sees it
(Section 3.2): peak per-SM issue rate, LLC accesses per kilo-instruction
(APKI), LLC hit rate and memory footprint.  An :class:`Application` is a
sequence of kernels executed in order and re-launched when it finishes
early — the paper's methodology for 25M-cycle multiprogram runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.gpu.llc import HitRateCurve


@dataclass(frozen=True)
class Kernel:
    """One GPU kernel's profile.

    Attributes
    ----------
    name:
        Kernel label (``<app>#<index>`` by convention).
    ipc_per_sm:
        Peak instructions/cycle one SM sustains when memory never stalls
        it (Equation 1's :math:`IPC_{max}` expressed per SM).
    apki_llc:
        LLC accesses per kilo-instruction (Equation 1's APKI).
    llc_hit_rate:
        Profiled LLC hit rate at the reference allocation.
    footprint_bytes:
        Resident data set of the kernel.
    instructions:
        Kernel length in instructions (per launched grid).
    hit_curve:
        Optional capacity-dependent hit-rate curve; when None the hit rate
        is treated as capacity-independent.
    """

    name: str
    ipc_per_sm: float
    apki_llc: float
    llc_hit_rate: float
    footprint_bytes: int
    instructions: int = 50_000_000
    hit_curve: Optional[HitRateCurve] = None

    def __post_init__(self) -> None:
        if self.ipc_per_sm <= 0:
            raise ConfigError(f"{self.name}: ipc_per_sm must be positive")
        if self.apki_llc < 0:
            raise ConfigError(f"{self.name}: apki_llc must be non-negative")
        if not 0.0 <= self.llc_hit_rate <= 1.0:
            raise ConfigError(f"{self.name}: llc_hit_rate must be in [0, 1]")
        if self.footprint_bytes < 0:
            raise ConfigError(f"{self.name}: footprint must be non-negative")
        if self.instructions <= 0:
            raise ConfigError(f"{self.name}: instructions must be positive")

    @property
    def mpki_llc(self) -> float:
        """LLC misses per kilo-instruction (the Table 2 MPKI column)."""
        return self.apki_llc * (1.0 - self.llc_hit_rate)

    def hit_rate_at(self, llc_capacity_bytes: float) -> float:
        """Hit rate with a given LLC allocation."""
        if self.hit_curve is None:
            return self.llc_hit_rate
        return self.hit_curve.hit_rate(llc_capacity_bytes)


@dataclass
class KernelProgress:
    """Execution cursor within an application's kernel sequence."""

    kernel_index: int = 0
    instructions_done: int = 0
    launches: int = 0          #: completed full passes over the kernel list
    total_instructions: int = 0


class Application:
    """A benchmark: an ordered kernel list plus execution state."""

    def __init__(self, app_id: int, name: str, kernels: Sequence[Kernel]) -> None:
        if not kernels:
            raise ConfigError(f"application {name} needs at least one kernel")
        self.app_id = app_id
        self.name = name
        self.kernels: List[Kernel] = list(kernels)
        self.progress = KernelProgress()
        #: Instructions retired during the first full run (the paper
        #: reports performance from each benchmark's first run).
        self.first_run_instructions: Optional[int] = None

    @property
    def current_kernel(self) -> Kernel:
        return self.kernels[self.progress.kernel_index]

    @property
    def footprint_bytes(self) -> int:
        """Application memory footprint: the max over its kernels."""
        return max(k.footprint_bytes for k in self.kernels)

    @property
    def instructions_per_launch(self) -> int:
        return sum(k.instructions for k in self.kernels)

    def advance(self, instructions: int) -> int:
        """Retire ``instructions``, walking across kernel boundaries and
        re-launching the application when it completes (the paper re-runs
        benchmarks that finish before the 25M-cycle horizon).

        Returns the number of kernel boundaries crossed (used to detect
        phase changes that may trigger repartitioning).
        """
        if instructions < 0:
            raise ConfigError("cannot advance by negative instructions")
        boundaries = 0
        remaining = instructions
        progress = self.progress
        while remaining > 0:
            kernel = self.kernels[progress.kernel_index]
            left_in_kernel = kernel.instructions - progress.instructions_done
            if remaining < left_in_kernel:
                progress.instructions_done += remaining
                remaining = 0
            else:
                remaining -= left_in_kernel
                progress.instructions_done = 0
                progress.kernel_index += 1
                boundaries += 1
                if progress.kernel_index >= len(self.kernels):
                    progress.kernel_index = 0
                    progress.launches += 1
                    if self.first_run_instructions is None:
                        self.first_run_instructions = (
                            progress.total_instructions + instructions - remaining
                        )
        progress.total_instructions += instructions
        return boundaries

    def reset(self) -> None:
        """Rewind execution state (fresh simulation run)."""
        self.progress = KernelProgress()
        self.first_run_instructions = None

    def clone(self, app_id: Optional[int] = None) -> "Application":
        """A fresh copy with reset progress (for homogeneous mixes)."""
        return Application(
            app_id=self.app_id if app_id is None else app_id,
            name=self.name,
            kernels=self.kernels,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Application({self.name}, {len(self.kernels)} kernels)"
