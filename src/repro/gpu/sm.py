"""Streaming multiprocessor model: occupancy and peak issue rate.

The epoch-level simulation needs two things from an SM: how many warps a
kernel can keep resident (occupancy — bounded by threads, warps, shared
memory, registers and block slots) and the resulting peak issue rate
``ipc_per_sm`` that feeds the compute roofline of
:class:`~repro.gpu.performance.PerformanceModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class OccupancyLimits:
    """Which resource bounds a kernel's residency on one SM."""

    blocks_by_threads: int
    blocks_by_shared_memory: int
    blocks_by_registers: int
    blocks_by_slots: int

    @property
    def blocks(self) -> int:
        """Resident thread blocks per SM."""
        return max(
            0,
            min(
                self.blocks_by_threads,
                self.blocks_by_shared_memory,
                self.blocks_by_registers,
                self.blocks_by_slots,
            ),
        )

    @property
    def limiter(self) -> str:
        """Name of the binding resource."""
        pairs = [
            ("threads", self.blocks_by_threads),
            ("shared_memory", self.blocks_by_shared_memory),
            ("registers", self.blocks_by_registers),
            ("block_slots", self.blocks_by_slots),
        ]
        return min(pairs, key=lambda p: p[1])[0]


def occupancy(
    config: GPUConfig,
    threads_per_block: int,
    shared_mem_per_block: int = 0,
    registers_per_thread: int = 32,
) -> OccupancyLimits:
    """Compute per-SM residency limits for a kernel launch."""
    if threads_per_block <= 0:
        raise ConfigError("threads_per_block must be positive")
    if threads_per_block > config.max_threads_per_sm:
        raise ConfigError(
            f"block of {threads_per_block} threads exceeds the SM limit "
            f"({config.max_threads_per_sm})"
        )
    unconstrained = 1 << 30  # sentinel well above any real block count
    by_threads = config.max_threads_per_sm // threads_per_block
    by_smem = (
        config.shared_memory_per_sm // shared_mem_per_block
        if shared_mem_per_block > 0
        else unconstrained
    )
    regs_per_block = registers_per_thread * threads_per_block
    by_regs = (
        config.registers_per_sm // regs_per_block
        if regs_per_block > 0
        else unconstrained
    )
    return OccupancyLimits(
        blocks_by_threads=by_threads,
        blocks_by_shared_memory=by_smem,
        blocks_by_registers=by_regs,
        blocks_by_slots=config.max_blocks_per_sm,
    )


class StreamingMultiprocessor:
    """Issue-rate model of one SM.

    The SM issues up to ``warp_schedulers_per_sm`` instructions per cycle
    when enough warps are ready.  A kernel's per-warp issue probability
    (its latency-hiding quality) converts resident warps into achieved
    IPC; the value saturates at the scheduler width.
    """

    def __init__(self, config: GPUConfig, sm_id: int = 0) -> None:
        config.validate()
        self.config = config
        self.sm_id = sm_id
        #: The application currently owning this SM (UGPU slice member).
        self.owner: Optional[int] = None
        self.instructions_retired = 0

    def peak_ipc(self) -> float:
        """Scheduler-bound peak warp instructions per cycle (2 in Table 1)."""
        return float(self.config.warp_schedulers_per_sm)

    def peak_thread_ipc(self) -> float:
        """Peak *thread-level* instructions per cycle: schedulers x SIMT
        lanes (2 x 32 = 64).  Kernel profiles (and Table 2 MPKI values)
        count thread instructions, so this is the ceiling for a kernel's
        ``ipc_per_sm``."""
        return float(
            self.config.warp_schedulers_per_sm * self.config.threads_per_warp
        )

    def achieved_ipc(self, resident_warps: int, warp_issue_prob: float) -> float:
        """Expected IPC with ``resident_warps`` warps each ready to issue
        with probability ``warp_issue_prob`` per cycle.

        Uses the standard ``min(peak, expected ready warps)`` throughput
        approximation; exact for both the latency-bound (few warps) and
        throughput-bound (many warps) regimes.
        """
        if resident_warps < 0:
            raise ConfigError("resident_warps must be non-negative")
        if not 0.0 <= warp_issue_prob <= 1.0:
            raise ConfigError("warp_issue_prob must be in [0, 1]")
        expected_ready = resident_warps * warp_issue_prob
        return min(self.peak_ipc(), expected_ready)

    def retire(self, instructions: int) -> None:
        """Account retired instructions (epoch bookkeeping)."""
        if instructions < 0:
            raise ConfigError("cannot retire a negative instruction count")
        self.instructions_retired += instructions

    def assign(self, app_id: Optional[int]) -> None:
        """Hand this SM to an application slice (None parks it)."""
        self.owner = app_id
