"""Hardware performance counters used by the epoch profiler.

The paper adds 16-bit counters for LLC accesses, LLC hits and memory
bandwidth utilization (Section 3.3).  Real narrow counters either wrap or
saturate; UGPU's profiler only needs epoch-relative deltas, so the model
offers both behaviours and the profiler layers delta reads on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


class HardwareCounter:
    """A fixed-width event counter.

    ``saturating=True`` pins the value at the maximum (the paper's safe
    choice for rate estimation); otherwise the counter wraps modulo 2^width
    like most real PMU counters.
    """

    def __init__(self, width_bits: int = 16, saturating: bool = True) -> None:
        if width_bits <= 0:
            raise ConfigError("counter width must be positive")
        self.width_bits = width_bits
        self.saturating = saturating
        self._max = (1 << width_bits) - 1
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    @property
    def max_value(self) -> int:
        return self._max

    def increment(self, by: int = 1) -> None:
        """Count ``by`` events."""
        if by < 0:
            raise ConfigError("counters only count forward")
        raw = self._value + by
        if self.saturating:
            self._value = min(raw, self._max)
        else:
            self._value = raw & self._max

    def reset(self) -> None:
        self._value = 0

    def read_and_reset(self) -> int:
        """Epoch-boundary read: return the value and clear the counter."""
        value = self._value
        self._value = 0
        return value


@dataclass
class CounterSnapshot:
    """Values read from one application's counters at an epoch boundary."""

    instructions: int
    llc_accesses: int
    llc_hits: int
    dram_bytes: int

    @property
    def llc_hit_rate(self) -> float:
        if self.llc_accesses == 0:
            return 0.0
        return self.llc_hits / self.llc_accesses

    @property
    def apki_llc(self) -> float:
        """LLC accesses per kilo-instruction (Equation 1's APKI)."""
        if self.instructions == 0:
            return 0.0
        return self.llc_accesses * 1000.0 / self.instructions


class CounterBank:
    """The per-application counter set the UGPU profiler reads.

    Instruction counters reuse the SMs' existing wide performance counters
    (the paper notes these already exist), so they get 48 bits; the newly
    added LLC/bandwidth counters are 16-bit as specified, but the profiler
    samples event counts scaled down by ``scale`` (events per tick) so an
    epoch's activity fits the narrow width.
    """

    def __init__(self, scale: int = 1024) -> None:
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.scale = scale
        self.instructions = HardwareCounter(width_bits=48)
        self.llc_accesses = HardwareCounter(width_bits=16)
        self.llc_hits = HardwareCounter(width_bits=16)
        self.dram_bytes = HardwareCounter(width_bits=16)
        self._access_residue = 0
        self._hit_residue = 0
        self._byte_residue = 0

    def count_instructions(self, n: int) -> None:
        self.instructions.increment(n)

    def count_llc_access(self, n: int = 1, hit: bool = False) -> None:
        """Record LLC accesses (and hits) with down-scaling."""
        self._access_residue += n
        ticks, self._access_residue = divmod(self._access_residue, self.scale)
        self.llc_accesses.increment(ticks)
        if hit:
            self._hit_residue += n
            ticks, self._hit_residue = divmod(self._hit_residue, self.scale)
            self.llc_hits.increment(ticks)

    def count_dram_bytes(self, n: int) -> None:
        self._byte_residue += n
        ticks, self._byte_residue = divmod(self._byte_residue, self.scale)
        self.dram_bytes.increment(ticks)

    def count_epoch_events(self, instructions: int, misses: int, hits: int,
                           dram_bytes: int) -> None:
        """One epoch's aggregate counts in a single call.

        Exactly equivalent to ``count_instructions(instructions)`` +
        ``count_llc_access(misses, hit=False)`` +
        ``count_llc_access(hits, hit=True)`` +
        ``count_dram_bytes(dram_bytes)``: splitting a residue update in
        two yields the same total ticks and final residue as one combined
        ``divmod``, and consecutive non-negative increments compose for
        both saturating and wrapping counters.
        """
        if instructions < 0 or misses < 0 or hits < 0 or dram_bytes < 0:
            raise ConfigError("counters only count forward")
        scale = self.scale
        # Increments inlined (all four counters are saturating).
        counter = self.instructions
        raw = counter._value + instructions
        counter._value = raw if raw <= counter._max else counter._max
        self._access_residue += misses + hits
        ticks, self._access_residue = divmod(self._access_residue, scale)
        counter = self.llc_accesses
        raw = counter._value + ticks
        counter._value = raw if raw <= counter._max else counter._max
        self._hit_residue += hits
        ticks, self._hit_residue = divmod(self._hit_residue, scale)
        counter = self.llc_hits
        raw = counter._value + ticks
        counter._value = raw if raw <= counter._max else counter._max
        self._byte_residue += dram_bytes
        ticks, self._byte_residue = divmod(self._byte_residue, scale)
        counter = self.dram_bytes
        raw = counter._value + ticks
        counter._value = raw if raw <= counter._max else counter._max

    def snapshot(self) -> CounterSnapshot:
        """Epoch-boundary read-and-reset of the whole bank."""
        return CounterSnapshot(
            instructions=self.instructions.read_and_reset(),
            llc_accesses=self.llc_accesses.read_and_reset() * self.scale,
            llc_hits=self.llc_hits.read_and_reset() * self.scale,
            dram_bytes=self.dram_bytes.read_and_reset() * self.scale,
        )
