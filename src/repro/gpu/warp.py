"""Warp-level timing: from kernel characteristics to per-SM issue rate.

The workload catalog stores each kernel's ``ipc_per_sm`` directly (that is
what UGPU's counters observe), but the value is *derived from* warp-level
behaviour: resident warps hide memory latency, and the SM issues from
whichever warps are ready.  This module provides that derivation, used to
sanity-check the catalog's calibration and to characterize synthetic
kernels from first principles.

Model: a warp alternates compute phases and memory stalls.  Per (thread)
instruction it spends 1/width issue cycles and
``apki/1000 * miss_rate_l1 * latency`` stall cycles waiting for LLC/DRAM
returns (divided by per-warp MLP).  With ``W`` resident warps, the SM's
issue slots are busy ``min(1, W * duty)`` of the time, where ``duty`` is
one warp's issue-cycle fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel


@dataclass(frozen=True)
class WarpTiming:
    """Derived warp-level quantities for one kernel."""

    issue_cycles_per_instr: float
    stall_cycles_per_instr: float
    warp_duty: float          #: fraction of time one warp is issue-ready
    warps_to_saturate: float  #: resident warps needed for full issue rate

    @property
    def latency_bound(self) -> bool:
        """True if 64 resident warps cannot saturate the schedulers."""
        return self.warps_to_saturate > 64.0


class WarpTimingModel:
    """Derive per-SM issue rates from warp-level structure."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 l1_miss_rate: float = 0.6,
                 mlp_per_warp: float = 6.0) -> None:
        """``l1_miss_rate``: fraction of a kernel's memory instructions
        missing the L1 and travelling to the LLC (APKI counts those);
        ``mlp_per_warp``: overlapping outstanding misses per warp
        (coalesced GPU loads keep several lines in flight; 128 L1 MSHRs
        over ~20 actively-missing warps gives roughly six)."""
        config = config if config is not None else GPUConfig()
        config.validate()
        if not 0.0 < l1_miss_rate <= 1.0:
            raise ConfigError("l1_miss_rate must be in (0, 1]")
        if mlp_per_warp <= 0:
            raise ConfigError("mlp_per_warp must be positive")
        self.config = config
        self.l1_miss_rate = l1_miss_rate
        self.mlp_per_warp = mlp_per_warp

    def _memory_latency(self, kernel: Kernel) -> float:
        """Average LLC-or-DRAM round trip for this kernel's accesses."""
        cfg = self.config
        hit = kernel.llc_hit_rate
        return hit * cfg.llc_latency_cycles + (1 - hit) * cfg.dram_latency_cycles

    def timing(self, kernel: Kernel, resident_warps: int = 64) -> WarpTiming:
        """Warp-level breakdown of the kernel's execution."""
        if resident_warps <= 0:
            raise ConfigError("resident_warps must be positive")
        cfg = self.config
        # Issue time: one warp instruction (32 threads) per scheduler slot.
        issue_per_thread_instr = 1.0 / cfg.threads_per_warp
        # Stall time: LLC accesses per thread instruction, serialized over
        # the warp's MLP.
        llc_accesses_per_instr = kernel.apki_llc / 1000.0
        stall_per_thread_instr = (
            llc_accesses_per_instr
            * self._memory_latency(kernel)
            / self.mlp_per_warp
        )
        duty = issue_per_thread_instr / max(
            issue_per_thread_instr + stall_per_thread_instr, 1e-12
        )
        saturate = 1.0 / max(duty, 1e-12)
        return WarpTiming(
            issue_cycles_per_instr=issue_per_thread_instr,
            stall_cycles_per_instr=stall_per_thread_instr,
            warp_duty=duty,
            warps_to_saturate=saturate,
        )

    def ipc_per_sm(self, kernel: Kernel, resident_warps: int = 64) -> float:
        """Achievable thread-level IPC of one SM running this kernel.

        ``min(peak, W * duty * peak)`` with peak = schedulers x lanes.
        """
        cfg = self.config
        peak = cfg.warp_schedulers_per_sm * cfg.threads_per_warp
        t = self.timing(kernel, resident_warps)
        occupancy_factor = min(1.0, resident_warps * t.warp_duty
                               / cfg.warp_schedulers_per_sm)
        return peak * occupancy_factor

    def validates_catalog_value(self, kernel: Kernel,
                                tolerance: float = 0.35) -> bool:
        """Is the catalog's stored ``ipc_per_sm`` achievable within
        ``tolerance`` of the warp-derived value (at full occupancy)?"""
        derived = self.ipc_per_sm(kernel)
        return kernel.ipc_per_sm <= derived * (1.0 + tolerance)
