"""Last-level cache models.

Two complementary tools:

* :class:`SetAssociativeCache` — a real set-associative LRU cache
  simulator, used by the synthetic-trace tests and to calibrate hit-rate
  curves.  Geometry defaults to one Table 1 LLC slice.
* :class:`HitRateCurve` — the analytic capacity-to-hit-rate relationship
  the epoch model uses: when UGPU moves memory channels between slices,
  the LLC capacity moves with them (two slices per channel), shifting each
  application's hit rate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class SetAssociativeCache:
    """A set-associative LRU cache over line addresses.

    Addresses are byte addresses; the cache extracts the line tag/index
    itself.  Writes allocate like reads (GPU LLCs are typically
    write-allocate for the traffic classes that matter here).
    """

    def __init__(self, size_bytes: int = 96 * 1024, ways: int = 16,
                 line_bytes: int = 128) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ConfigError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes) != 0:
            raise ConfigError(
                f"size {size_bytes} not divisible by ways*line ({ways}x{line_bytes})"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit, False on miss+fill."""
        if address < 0:
            raise ConfigError("addresses are non-negative")
        index, tag = self._locate(address)
        ways = self._sets[index]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self.ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        ways[tag] = True
        return False

    def run_trace(self, addresses: Sequence[int]) -> CacheStats:
        """Access every address in order; returns the cumulative stats."""
        for address in addresses:
            self.access(address)
        return self.stats

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)


class HitRateCurve:
    """Hit rate as a function of allocated LLC capacity.

    Uses the classic single-knee working-set model: below the working set,
    hit rate grows with capacity following a power law (the cache rule of
    thumb ``hit ~ 1 - (C0 / C)^alpha`` clipped to the base hit rate);
    above it, the hit rate is flat at ``peak_hit_rate``.

    The curve is anchored so that ``hit_rate(reference_capacity) ==
    reference_hit_rate`` — profiling gives the anchor, the curve
    extrapolates to unexplored allocations (this is the only place the
    epoch model extrapolates cache behaviour, and the partitioning
    algorithm itself never relies on it, matching the paper's claim that
    no full performance model is needed).
    """

    def __init__(self, reference_capacity: float, reference_hit_rate: float,
                 working_set: float, peak_hit_rate: float = None,
                 alpha: float = 0.5) -> None:
        if reference_capacity <= 0 or working_set <= 0:
            raise ConfigError("capacities must be positive")
        if not 0.0 <= reference_hit_rate <= 1.0:
            raise ConfigError("hit rates live in [0, 1]")
        if alpha <= 0:
            raise ConfigError("alpha must be positive")
        self.reference_capacity = reference_capacity
        self.reference_hit_rate = reference_hit_rate
        self.working_set = working_set
        self.peak_hit_rate = (
            peak_hit_rate
            if peak_hit_rate is not None
            else min(1.0, reference_hit_rate * 1.25)
        )
        if not self.reference_hit_rate <= self.peak_hit_rate <= 1.0:
            raise ConfigError("peak_hit_rate must be >= reference and <= 1")
        self.alpha = alpha

    def hit_rate(self, capacity: float) -> float:
        """Hit rate with ``capacity`` bytes of LLC."""
        if capacity <= 0:
            return 0.0
        if capacity >= self.working_set:
            return self.peak_hit_rate
        if self.reference_capacity >= self.working_set:
            # The anchor sits on the flat region; scale down from there.
            base_cap = self.working_set
            base_hit = self.peak_hit_rate
        else:
            base_cap = self.reference_capacity
            base_hit = self.reference_hit_rate
        scaled = base_hit * (capacity / base_cap) ** self.alpha
        return max(0.0, min(self.peak_hit_rate, scaled))


class SlicedLLC:
    """The full LLC as channel-co-located slices (Table 1: 64 slices, two
    per memory channel).

    Addresses hash across the *allocated* slices only — when UGPU hands a
    channel to another slice's owner, the LLC capacity (and its cached
    lines) travel with it, which is why a slice's LLC capacity is
    ``channels x llc_bytes_per_channel`` throughout the library.
    """

    def __init__(self, num_slices: int = 64, slice_bytes: int = 96 * 1024,
                 ways: int = 16, line_bytes: int = 128) -> None:
        if num_slices <= 0:
            raise ConfigError("need at least one slice")
        self.num_slices = num_slices
        self.line_bytes = line_bytes
        self.slices = [
            SetAssociativeCache(slice_bytes, ways, line_bytes)
            for _ in range(num_slices)
        ]
        self._allocated = list(range(num_slices))

    @property
    def allocated_slices(self) -> List[int]:
        return list(self._allocated)

    @property
    def capacity_bytes(self) -> int:
        return sum(self.slices[i].size_bytes for i in self._allocated)

    def allocate(self, slice_ids: Sequence[int]) -> None:
        """Restrict accesses to a slice subset (a UGPU slice's share).

        Newly removed slices keep their contents (their next owner flushes
        them on reallocation, modelled by :meth:`flush_slice`).
        """
        ids = sorted(set(slice_ids))
        if not ids:
            raise ConfigError("need at least one allocated slice")
        for slice_id in ids:
            if not 0 <= slice_id < self.num_slices:
                raise ConfigError(f"slice {slice_id} out of range")
        self._allocated = ids

    def _route(self, address: int) -> Tuple[SetAssociativeCache, int]:
        """Pick the slice and strip the slice-selection bits.

        The slice index comes from the low line bits; the remaining line
        bits form the address the slice sees (otherwise the slice's set
        index would alias with the slice hash and only use 1/k of its
        sets).
        """
        line = address // self.line_bytes
        fanout = len(self._allocated)
        cache = self.slices[self._allocated[line % fanout]]
        return cache, (line // fanout) * self.line_bytes

    def access(self, address: int) -> bool:
        """Touch ``address`` in its hashed slice; True on hit."""
        cache, local = self._route(address)
        return cache.access(local)

    def run_trace(self, addresses: Sequence[int]) -> CacheStats:
        """Replay a trace; returns aggregate stats over allocated slices."""
        for address in addresses:
            self.access(address)
        return self.stats()

    def stats(self) -> CacheStats:
        total = CacheStats()
        for index in self._allocated:
            stats = self.slices[index].stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.evictions += stats.evictions
        return total

    def flush_slice(self, slice_id: int) -> None:
        """Invalidate one slice (PageMove flushes caches on reallocation)."""
        if not 0 <= slice_id < self.num_slices:
            raise ConfigError(f"slice {slice_id} out of range")
        cache = self.slices[slice_id]
        self.slices[slice_id] = SetAssociativeCache(
            cache.size_bytes, cache.ways, cache.line_bytes
        )
