"""GPU substrate: the simulated machine of paper Table 1.

An 80-SM GPU at 1.4 GHz with a 6 MB / 64-slice LLC, an 80x64 crossbar NoC
and the 4-stack HBM system from :mod:`repro.hbm`.  The module provides
both structural models (SM occupancy, set-associative LLC, crossbar) and
the analytic two-roofline performance model
(:mod:`repro.gpu.performance`) that the epoch-level system simulation
evaluates applications with.
"""

from repro.gpu.config import GPUConfig
from repro.gpu.counters import CounterBank, HardwareCounter
from repro.gpu.kernel import Application, Kernel, KernelProgress
from repro.gpu.llc import CacheStats, HitRateCurve, SetAssociativeCache, SlicedLLC
from repro.gpu.noc import CrossbarNoC
from repro.gpu.performance import PerformanceModel, SliceThroughput
from repro.gpu.sm import OccupancyLimits, StreamingMultiprocessor, occupancy
from repro.gpu.warp import WarpTiming, WarpTimingModel

__all__ = [
    "GPUConfig",
    "HardwareCounter",
    "CounterBank",
    "Kernel",
    "KernelProgress",
    "Application",
    "SetAssociativeCache",
    "CacheStats",
    "HitRateCurve",
    "SlicedLLC",
    "CrossbarNoC",
    "PerformanceModel",
    "SliceThroughput",
    "StreamingMultiprocessor",
    "OccupancyLimits",
    "occupancy",
    "WarpTiming",
    "WarpTimingModel",
]
