"""GPU architecture configuration (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.hbm.config import HBMConfig
from repro.units import KB, MB


@dataclass(frozen=True)
class GPUConfig:
    """The simulated GPU of Table 1.

    80 SMs at 1.4 GHz with 32-wide SIMT, a 6 MB LLC in 64 slices (two per
    memory channel), an 80x64 crossbar NoC and 4 HBM stacks totalling
    32 channels / 900 GB/s.
    """

    num_sms: int = 80
    sm_freq_ghz: float = 1.4
    simt_width: int = 32
    max_threads_per_sm: int = 2048
    max_warps_per_sm: int = 64
    threads_per_warp: int = 32
    warp_schedulers_per_sm: int = 2
    shared_memory_per_sm: int = 96 * KB
    registers_per_sm: int = 65536
    max_blocks_per_sm: int = 32

    l1d_size: int = 48 * KB
    l1d_ways: int = 6
    l1d_sets: int = 64
    l1d_line_bytes: int = 128
    l1d_mshr_entries: int = 128

    llc_size: int = 6 * MB
    llc_slices: int = 64
    llc_ways: int = 16
    llc_sets_per_slice: int = 48
    llc_latency_cycles: int = 120
    llc_line_bytes: int = 128

    l1_tlb_entries: int = 64
    l2_tlb_entries: int = 512
    l2_tlb_ways: int = 16

    noc_ports_sm: int = 80
    noc_ports_mem: int = 64
    noc_channel_bytes: int = 32

    ptw_threads: int = 64
    page_table_levels: int = 4
    page_fault_latency_us: float = 20.0   #: optimistic UVM fault (Section 5)

    #: Memory-level-parallelism draw law: the LLC-level bandwidth a slice
    #: of s SMs and m channels can keep in flight is
    #: ``draw_coeff * (s * m) ** draw_exp / (1 - (1 - r) * H)`` bytes per
    #: cycle, where ``r = llc_latency / dram_latency`` — in-flight capacity
    #: grows with both source parallelism (L1 MSHRs per SM) and sink
    #: parallelism (per-channel queue depth) but sub-linearly in their
    #: product (queueing losses), and inversely with the hit-rate-weighted
    #: round-trip latency (hits return ~3x faster, so hit-heavy streams
    #: sustain more bandwidth per MSHR).  Calibrated so a PVC-like kernel
    #: (25% hits) on 16 channels starts declining below ~20 SMs
    #: (Figure 3b) while 40 SMs cannot fully utilize all 32 channels
    #: ("increases slowly", Figure 3a).
    mlp_draw_coefficient: float = 35.6
    mlp_draw_exponent: float = 0.45
    #: Average DRAM round-trip latency in GPU cycles, used (with
    #: ``llc_latency_cycles``) to scale the MLP draw ceiling by hit rate.
    dram_latency_cycles: int = 400

    hbm: HBMConfig = field(default_factory=HBMConfig)

    def validate(self) -> None:
        """Raise :class:`ConfigError` if the configuration is inconsistent."""
        if self.num_sms <= 0:
            raise ConfigError("num_sms must be positive")
        if self.sm_freq_ghz <= 0:
            raise ConfigError("sm_freq_ghz must be positive")
        if self.max_warps_per_sm * self.threads_per_warp != self.max_threads_per_sm:
            raise ConfigError(
                "max_threads_per_sm must equal max_warps_per_sm * threads_per_warp"
            )
        if self.llc_slices % self.hbm.num_channels != 0:
            raise ConfigError(
                "llc_slices must be a multiple of the memory channel count"
            )
        expected_llc = (
            self.llc_slices * self.llc_ways * self.llc_sets_per_slice * self.llc_line_bytes
        )
        if expected_llc != self.llc_size:
            raise ConfigError(
                f"LLC geometry ({expected_llc} B) disagrees with llc_size "
                f"({self.llc_size} B)"
            )
        self.hbm.validate()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sm_freq_hz(self) -> float:
        return self.sm_freq_ghz * 1e9

    @property
    def llc_slices_per_channel(self) -> int:
        """LLC slices co-located with each memory channel (2 in Table 1)."""
        return self.llc_slices // self.hbm.num_channels

    @property
    def llc_bytes_per_channel(self) -> int:
        """LLC capacity that travels with one memory channel."""
        return self.llc_size // self.hbm.num_channels

    @property
    def num_channels(self) -> int:
        return self.hbm.num_channels

    def channel_bandwidth_bytes_per_cycle(self) -> float:
        """Peak DRAM bytes per *GPU cycle* provided by one channel."""
        per_second = self.hbm.channel_bandwidth_gbps * 1e9
        return per_second / self.sm_freq_hz

    def llc_slice_bandwidth_bytes_per_cycle(self) -> float:
        """Peak bytes per GPU cycle one LLC slice can serve.

        One 128 B line every four cycles per slice (32 B/cycle, i.e.
        64 B/cycle per memory channel with its two slices) — the ~2x-DRAM
        LLC bandwidth ratio typical of GPU LLCs, and the value that places
        every Table 2 benchmark on its published side of the Equation 1/2
        classification boundary.
        """
        return self.llc_line_bytes / 4

    def page_fault_latency_cycles(self) -> float:
        """The 20 us far-fault latency expressed in GPU cycles."""
        return self.page_fault_latency_us * 1e-6 * self.sm_freq_hz

    def draw_bytes_per_cycle(self, num_sms: int, num_channels: int,
                             llc_hit_rate: float) -> float:
        """MLP draw ceiling: LLC-level bytes/cycle a slice can keep in
        flight (see :attr:`mlp_draw_coefficient`)."""
        latency_ratio = self.llc_latency_cycles / self.dram_latency_cycles
        scale = 1.0 - (1.0 - latency_ratio) * min(max(llc_hit_rate, 0.0), 1.0)
        return (
            self.mlp_draw_coefficient
            * (num_sms * num_channels) ** self.mlp_draw_exponent
            / max(scale, latency_ratio)
        )
