"""Network-on-chip model: the 80x64 crossbar of Table 1.

The NoC carries requests from SMs to LLC slices / memory controllers and
replies back.  UGPU partitions NoC ports together with the resources they
front (each slice's SMs talk only to its channels' ports), so per-slice
NoC bandwidth scales with the slice's port counts.  The model is analytic:
it reports the bisection-style bandwidth available to a slice and whether
the NoC, rather than DRAM, would bound a given demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class NoCAllocation:
    """Ports assigned to one GPU slice."""

    sm_ports: int
    mem_ports: int


class CrossbarNoC:
    """Analytic crossbar: per-port channel width, full bisection."""

    def __init__(self, config: Optional[GPUConfig] = None) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        self.config = config

    def allocation_for(self, num_sms: int, num_channels: int) -> NoCAllocation:
        """Ports a slice with ``num_sms`` SMs and ``num_channels`` memory
        channels owns (LLC slices travel with channels: 2 ports each)."""
        cfg = self.config
        if not 0 <= num_sms <= cfg.noc_ports_sm:
            raise ConfigError(f"num_sms {num_sms} out of range")
        mem_ports = num_channels * cfg.llc_slices_per_channel
        if mem_ports > cfg.noc_ports_mem:
            raise ConfigError(f"{num_channels} channels exceed NoC memory ports")
        return NoCAllocation(sm_ports=num_sms, mem_ports=mem_ports)

    def reply_bandwidth_bytes_per_cycle(self, allocation: NoCAllocation) -> float:
        """Peak reply-network bytes/cycle for a slice: limited by the
        narrower side of its crossbar ports."""
        width = self.config.noc_channel_bytes
        return min(allocation.sm_ports, allocation.mem_ports) * width

    def is_noc_bound(self, allocation: NoCAllocation,
                     demand_bytes_per_cycle: float) -> bool:
        """Would this demand saturate the slice's NoC before DRAM?

        With Table 1 parameters the answer is essentially always False —
        32 B/cycle/port dwarfs per-channel DRAM bandwidth — matching the
        paper's choice not to study the NoC as a bottleneck.
        """
        return demand_bytes_per_cycle > self.reply_bandwidth_bytes_per_cycle(allocation)

    def utilization(self, allocation: NoCAllocation,
                    demand_bytes_per_cycle: float) -> float:
        """Offered load over the slice's reply-network capacity (0..1+)."""
        capacity = self.reply_bandwidth_bytes_per_cycle(allocation)
        if capacity <= 0:
            return float("inf") if demand_bytes_per_cycle > 0 else 0.0
        return demand_bytes_per_cycle / capacity

    def queueing_latency_cycles(self, allocation: NoCAllocation,
                                demand_bytes_per_cycle: float,
                                hop_cycles: float = 4.0) -> float:
        """Expected per-flit traversal latency under load.

        M/D/1 waiting time on top of the crossbar's fixed hop latency:
        ``hop + rho / (2 * (1 - rho)) * service``, with one flit (a
        32-byte channel's worth) per cycle of service time.  Saturated
        (or over-saturated) slices return infinity — the signal that the
        slice is NoC-bound and the bandwidth roofline no longer describes
        it.  With Table 1 parameters demand never gets close (the DRAM
        roofline binds first), so the epoch model can safely ignore NoC
        queueing; this method exists to *verify* that claim per slice.
        """
        if hop_cycles < 0:
            raise ConfigError("hop_cycles must be non-negative")
        rho = self.utilization(allocation, demand_bytes_per_cycle)
        if rho >= 1.0:
            return float("inf")
        service = 1.0  # one flit per port per cycle
        return hop_cycles + rho / (2.0 * (1.0 - rho)) * service
