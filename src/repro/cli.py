"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro catalog                       # print Table 2
    python -m repro run --mix PVC,DXTC            # one mix, all policies
    python -m repro run --mix PVC,DXTC --policy ugpu bp
    python -m repro sweep --policies bp ugpu      # 50 heterogeneous mixes
    python -m repro sweep --policies bp ugpu --jobs 8   # process-pool fan-out
    python -m repro qos --target 0.75             # Figure 16 scenario
    python -m repro arrivals --seed 0             # open-system Poisson run
    python -m repro fleet --nodes 200 --jobs 8    # fleet placement shoot-out
    python -m repro trace --mix PVC,DXTC          # timeline -> JSONL + Perfetto
    python -m repro metrics trace.jsonl           # trace -> Prometheus metrics
    python -m repro profile --scenario arrivals   # self-profile: hot phases
    python -m repro bench --compare benchmarks/baseline.json  # perf gate
    python -m repro fleet --report-dir runs/a     # capture a run bundle
    python -m repro inspect runs/a                # post-hoc findings report
    python -m repro diff runs/a runs/b            # run-vs-run comparison

``run`` and ``sweep`` execute through :mod:`repro.exec`: ``--jobs N``
fans the independent simulations out over N worker processes, and
results are memoized under ``--cache-dir`` (default
``~/.cache/repro/sweeps`` or ``$REPRO_CACHE_DIR``) so repeated
invocations cost near-zero; ``--no-cache`` forces fresh simulation.
An ``ExecStats`` footer reports jobs run, cache hits, wall-clock and the
kernel backend the jobs ran under.

``fleet`` scales the cluster extension to datacenter size: one seeded
Poisson stream of jobs plays against every requested placement policy
over the same fleet of nodes, with node execution sharded across the
``--jobs`` worker processes (results are byte-identical to a serial
run — the ExecStats footer goes to stderr so stdout can be diffed).

``run``, ``sweep``, ``arrivals`` and ``bench`` accept
``--kernel-backend {scalar,numpy}``: the pure-python scalar oracle or
the vectorized numpy fast path (the default when numpy is importable).
Both produce byte-identical simulation results; only the wall-clock
differs, which is why BENCH documents record the backend and the compare
gate refuses to verdict across backends.

``sweep`` and ``fleet`` additionally accept the cross-process
observability flags: ``--trace-out PREFIX`` records a merged timeline —
orchestrator events plus worker-side captures from every pool process,
correlated by ``run_id``/``shard_id``/``pid`` — and writes
``PREFIX.jsonl`` + ``PREFIX.chrome.json``; ``--log-jsonl FILE`` streams
structured log records (:mod:`repro.obslog`) carrying the same
correlation IDs.  ``fleet --health`` attaches the
:class:`~repro.cluster.health.FleetHealthMonitor` and prints its
per-placement verdict (stragglers, wait-queue stalls, cache collapse).

``trace`` runs one mix with a :mod:`repro.trace` recorder attached and
writes the timeline as JSONL (``<prefix>.jsonl``) and/or a Chrome-trace
file (``<prefix>.chrome.json``) that loads in ``chrome://tracing`` and
Perfetto, then prints the derived summary metrics.

``run``, ``sweep`` and ``arrivals`` accept :mod:`repro.telemetry` flags:
``--metrics-out`` (Prometheus text exposition), ``--metrics-json``
(snapshot), ``--metrics-csv`` (per-epoch long-format series — the input
``examples/live_dashboard.py`` tails) and ``--metrics-port`` (a live
``/metrics`` scrape endpoint for the duration of the run).  ``metrics``
derives the same registry offline from a recorded JSONL trace.

``sweep``, ``fleet``, ``arrivals`` and ``profile`` accept
``--report-dir DIR``: every artifact of the run — trace JSONL, Chrome
trace, metrics snapshot, obslog, profiler phases, ExecStats and the
command's deterministic results — is captured into DIR as a *run
bundle* behind a schema-versioned ``manifest.json`` (``--report-gzip``
compresses the line-oriented artifacts).  ``repro inspect BUNDLE``
loads a bundle (:mod:`repro.inspect`) and prints typed findings —
critical path, stragglers, wait-queue dynamics, phase rollups, cache
effectiveness — plus the hot-phase table; ``repro diff A B`` separates
determinism drift (results, deterministic counters, artifact meta
counts — required zero between identical-seed runs, whatever the
kernel backend) from expected timing deltas and attributes wall-time
change to specific span paths.  Both write self-contained single-file
HTML reports via ``--html``.

``profile`` and ``bench`` point the instruments at the simulator itself
(:mod:`repro.profiling`): ``profile`` runs one pinned scenario under the
:class:`~repro.profiling.PhaseProfiler` and prints the self/cumulative
hot-phase table plus a Perfetto-loadable Chrome trace; ``bench`` runs
the pinned suite k times per scenario, writes a schema-versioned
``BENCH_<git-sha>.json`` artifact, and with ``--compare`` gates the run
against a baseline document (exit 1 on a >15% min-time regression).
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
from typing import List, Optional, Sequence

from repro import MultitaskSystem, QoSTarget, TABLE2, build_mix
from repro.cluster import PlacementPolicy
from repro.exec import (
    ResultCache,
    SweepExecutor,
    SweepJob,
    registered_policies,
)
from repro.fastpath import (
    KERNEL_BACKENDS,
    resolve_kernel_backend,
    set_default_kernel_backend,
)
from repro.policies import BPPolicy, MPSPolicy, UGPUPolicy
from repro.workloads import heterogeneous_pairs, poisson_arrivals


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "sweeps"
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel-backend", default=None,
                        choices=list(KERNEL_BACKENDS),
                        help="simulation hot-loop implementation: 'scalar' "
                             "is the pure-python oracle, 'numpy' the "
                             "vectorized fast path (default: numpy when "
                             "importable; results are byte-identical)")


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes for the sweep executor "
                             "(default: 1, in-process)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro/sweeps)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache and re-simulate")


def _job_kwargs(args) -> Optional[dict]:
    """Sweep-job kwargs implied by global flags.

    An explicit ``--kernel-backend`` travels with each job so worker
    processes honor it and the result cache keys the two backends apart;
    the default (auto-resolution) adds nothing, keeping pre-existing
    cache entries valid.
    """
    backend = getattr(args, "kernel_backend", None)
    return {"kernel_backend": backend} if backend else None


def _executor_from(args, metrics=None) -> SweepExecutor:
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return SweepExecutor(jobs=args.jobs, cache=cache, metrics=metrics)


def _add_metrics_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the Prometheus text exposition here "
                             "when the command finishes")
    parser.add_argument("--metrics-json", default=None, metavar="FILE",
                        help="write a JSON metrics snapshot here")
    parser.add_argument("--metrics-csv", default=None, metavar="FILE",
                        help="sample every metric at each epoch boundary "
                             "into a long-format CSV")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live /metrics on this port for the "
                             "duration of the run (0 picks a free port)")


def _metrics_session(args, **extra):
    """Registry plus teardown callable from the ``--metrics-*`` flags.

    Returns ``(None, no-op)`` when no flag is set, so instrumented code
    paths stay on their ``metrics=None`` fast path.  ``extra`` becomes
    provenance labels on every export (command, policy, seed, ...).
    """
    if not any((args.metrics_out, args.metrics_json, args.metrics_csv,
                args.metrics_port is not None)):
        return None, lambda: None
    from repro.telemetry import (
        CsvSampler,
        MetricsRegistry,
        MetricsServer,
        stamp,
        write_json,
        write_prometheus,
    )

    registry = MetricsRegistry()
    stamp(registry, None, kernel_backend=resolve_kernel_backend(), **extra)
    sampler = None
    if args.metrics_csv:
        sampler = CsvSampler(args.metrics_csv)
        sampler.attach(registry)
    server = None
    if args.metrics_port is not None:
        server = MetricsServer(registry, port=args.metrics_port)
        server.start()
        print(f"live metrics at {server.url}")

    def finish() -> None:
        if server is not None:
            server.close()
        if sampler is not None:
            sampler.close()
            print(f"wrote {sampler.rows_written} epoch samples to "
                  f"{args.metrics_csv}")
        if args.metrics_out:
            count = write_prometheus(registry, args.metrics_out)
            print(f"wrote {count} metric samples to {args.metrics_out}")
        if args.metrics_json:
            families = write_json(registry, args.metrics_json)
            print(f"wrote {families} metric families to {args.metrics_json}")

    return registry, finish


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", default=None, metavar="PREFIX",
                        help="record a merged cross-process timeline and "
                             "write PREFIX.jsonl + PREFIX.chrome.json "
                             "(enables worker-side capture)")
    parser.add_argument("--log-jsonl", default=None, metavar="FILE",
                        help="write correlated structured log records "
                             "(one JSON object per line) here")


def _obs_session(args, command: str, **ids):
    """Recorder + obslog implied by ``--trace-out`` / ``--log-jsonl``.

    Returns ``(recorder, obslog, run_id, finish)`` — ``(None, None,
    "", no-op)`` when neither flag is set, so instrumented paths stay
    on their ``tracer=None`` / ``log=None`` fast path.  ``finish``
    writes the trace exports and closes the log; all announcements go
    to stderr so stdout stays byte-diffable between serial and sharded
    runs.  The session ``run_id`` hashes the command's shape (``ids``),
    so two invocations of the same configuration correlate.
    """
    trace_out = getattr(args, "trace_out", None)
    log_jsonl = getattr(args, "log_jsonl", None)
    if not trace_out and not log_jsonl:
        return None, None, "", lambda: None
    from repro.telemetry.provenance import config_hash

    run_id = config_hash(None, command=command, **ids)
    recorder = None
    if trace_out:
        from repro.trace import TraceRecorder

        recorder = TraceRecorder(capacity=262_144)
    obslog = None
    if log_jsonl:
        from repro.obslog import ObsLogger

        obslog = ObsLogger(log_jsonl, run_id=run_id)

    def finish() -> None:
        if recorder is not None:
            from repro.trace import write_chrome_trace, write_jsonl

            events = recorder.events()
            path = f"{trace_out}.jsonl"
            count = write_jsonl(events, path)
            print(f"wrote {count} trace events to {path}", file=sys.stderr)
            path = f"{trace_out}.chrome.json"
            count = write_chrome_trace(events, path)
            print(f"wrote {count} trace records to {path} "
                  "(open in chrome://tracing or https://ui.perfetto.dev)",
                  file=sys.stderr)
            if recorder.dropped:
                print(f"note: trace ring dropped {recorder.dropped} oldest "
                      "events", file=sys.stderr)
        if obslog is not None:
            count = obslog.records_written
            obslog.close()
            print(f"wrote {count} log records to {log_jsonl}",
                  file=sys.stderr)

    return recorder, obslog, run_id, finish


def _add_report_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--report-dir", default=None, metavar="DIR",
                        help="capture every artifact of this run (trace, "
                             "metrics, obslog, profiler phases, results) "
                             "into DIR as a run bundle for `repro inspect` "
                             "and `repro diff`")
    parser.add_argument("--report-gzip", action="store_true",
                        help="gzip the bundle's line-oriented artifacts "
                             "(readers decompress transparently)")


def _report_session(args, command: str, registry, recorder, obslog, **ids):
    """A :class:`~repro.inspect.RunReporter` from ``--report-dir``.

    Returns ``(reporter, registry, recorder, obslog)``.  Without the
    flag the sinks pass through unchanged (``reporter`` is ``None``).
    With it, the reporter *shares* whatever sinks the other
    observability flags already built and creates the missing ones, so
    the returned sinks must replace the caller's — one run, one set of
    evidence.  ``ids`` must match what :func:`_obs_session` hashed so
    the bundle's ``run_id`` equals the one stamped on trace/log records.
    """
    report_dir = getattr(args, "report_dir", None)
    if not report_dir:
        return None, registry, recorder, obslog
    from repro.inspect import RunReporter
    from repro.telemetry.provenance import config_hash

    reporter = RunReporter(
        report_dir,
        command=command,
        run_id=config_hash(None, command=command, **ids),
        registry=registry,
        recorder=recorder,
        obslog=obslog,
        obslog_source=getattr(args, "log_jsonl", None),
        compress=bool(getattr(args, "report_gzip", False)),
    )
    return reporter, reporter.registry, reporter.recorder, reporter.obslog


def _finish_report(reporter, results=None, exec_stats=None,
                   clock_ghz: float = 1.0, extra=None) -> None:
    if reporter is None:
        return
    path = reporter.finish(results=results, exec_stats=exec_stats,
                           clock_ghz=clock_ghz, extra=extra)
    print(f"wrote run bundle manifest to {path}", file=sys.stderr)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UGPU (ISCA 2025) reproduction: unbalanced GPU slices "
                    "with PageMove migration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    catalog = sub.add_parser("catalog", help="print the Table 2 benchmark catalog")

    run = sub.add_parser("run", help="run one workload mix under one or "
                                     "more policies")
    run.add_argument("--mix", required=True,
                     help="comma-separated benchmark abbreviations, e.g. PVC,DXTC")
    run.add_argument("--policy", nargs="+", default=registered_policies(),
                     choices=registered_policies(), help="policies to compare")
    run.add_argument("--cycles", type=int, default=25_000_000,
                     help="simulation horizon in GPU cycles")
    _add_exec_flags(run)
    _add_metrics_flags(run)
    _add_backend_flag(run)

    sweep = sub.add_parser("sweep", help="run the 50 heterogeneous mixes")
    sweep.add_argument("--policies", nargs="+", default=["bp", "ugpu"],
                       choices=registered_policies())
    sweep.add_argument("--cycles", type=int, default=25_000_000)
    _add_exec_flags(sweep)
    _add_metrics_flags(sweep)
    _add_obs_flags(sweep)
    _add_report_flags(sweep)
    _add_backend_flag(sweep)

    qos = sub.add_parser("qos", help="QoS scenario: high-priority "
                                     "compute-bound app (Figure 16)")
    qos.add_argument("--mix", default="PVC,DXTC")
    qos.add_argument("--target", type=float, default=0.75,
                     help="normalized-progress floor for the second app")
    qos.add_argument("--cycles", type=int, default=25_000_000)

    arrivals = sub.add_parser(
        "arrivals",
        help="open-system run: seeded Poisson job arrivals/departures")
    arrivals.add_argument("--seed", type=int, default=0,
                          help="arrival-trace seed (deterministic)")
    arrivals.add_argument("--policy", default="ugpu",
                          choices=registered_policies(),
                          help="partition policy (default: ugpu)")
    arrivals.add_argument("--mean-interarrival", type=_positive_int,
                          default=2_000_000, metavar="CYCLES",
                          help="mean inter-arrival time (default: 2M cycles)")
    arrivals.add_argument("--cycles", type=int, default=25_000_000,
                          help="simulation horizon in GPU cycles")
    arrivals.add_argument("--max-slots", type=_positive_int, default=None,
                          help="concurrent-residency cap (default: what the "
                               "GPU's minimum slices can host)")
    arrivals.add_argument("--initial", default=None, metavar="MIX",
                          help="comma-separated benchmarks resident at cycle "
                               "0 (default: start empty)")
    _add_metrics_flags(arrivals)
    _add_obs_flags(arrivals)
    _add_report_flags(arrivals)
    _add_backend_flag(arrivals)

    fleet = sub.add_parser(
        "fleet",
        help="fleet-scale open system: hundreds of nodes, one seeded "
             "arrival stream, every placement policy compared")
    fleet.add_argument("--nodes", type=_positive_int, default=48,
                       help="GPU nodes in the fleet (default: 48)")
    fleet.add_argument("--tenants-per-node", type=_positive_int, default=4,
                       help="slice slots per node (default: 4)")
    fleet.add_argument("--placement", nargs="+",
                       default=[p.value for p in PlacementPolicy],
                       choices=[p.value for p in PlacementPolicy],
                       help="placement policies to compare (default: all)")
    fleet.add_argument("--slicing", choices=["ugpu", "mig"], default="ugpu",
                       help="per-node slicing: unbalanced UGPU slices or "
                            "rigid MIG-like ones (default: ugpu)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="arrival-trace seed (deterministic)")
    fleet.add_argument("--mean-interarrival", type=_positive_int,
                       default=150_000, metavar="CYCLES",
                       help="mean job inter-arrival time (default: 150k "
                            "cycles — a busy fleet)")
    fleet.add_argument("--cycles", type=int, default=150_000_000,
                       help="simulation horizon in GPU cycles")
    fleet.add_argument("--round-cycles", type=_positive_int,
                       default=2_500_000, metavar="CYCLES",
                       help="scheduling-round length (default: 2.5M cycles)")
    fleet.add_argument("--rebalance-every", type=_positive_int, default=8,
                       metavar="ROUNDS",
                       help="rounds between cross-shard rebalancing passes "
                            "(default: 8)")
    fleet.add_argument("--instructions-per-kernel", type=_positive_int,
                       default=50_000_000, metavar="N",
                       help="kernel size for arriving jobs; one full launch "
                            "is a job's budget (default: 50M)")
    fleet.add_argument("--health", action="store_true",
                       help="attach the fleet health monitor and print its "
                            "per-placement verdict (stragglers, wait-queue "
                            "stalls, cache collapse)")
    _add_exec_flags(fleet)
    _add_metrics_flags(fleet)
    _add_obs_flags(fleet)
    _add_report_flags(fleet)
    _add_backend_flag(fleet)

    trace = sub.add_parser("trace", help="run one mix with tracing enabled "
                                         "and export the timeline")
    trace.add_argument("--mix", default="PVC,DXTC",
                       help="comma-separated benchmark abbreviations")
    trace.add_argument("--policy", default="ugpu",
                       choices=registered_policies(),
                       help="policy to trace (default: ugpu)")
    trace.add_argument("--cycles", type=int, default=25_000_000,
                       help="simulation horizon in GPU cycles")
    trace.add_argument("--output", default="trace", metavar="PREFIX",
                       help="output path prefix (default: ./trace)")
    trace.add_argument("--format", choices=["jsonl", "chrome", "both"],
                       default="both", help="which export(s) to write")
    trace.add_argument("--capacity", type=_positive_int, default=65_536,
                       help="trace ring-buffer capacity in events")
    trace.add_argument("--categories", nargs="+", default=None,
                       metavar="CAT",
                       help="record only these categories (default: all)")
    trace.add_argument("--clock-ghz", type=float, default=1.0,
                       help="GPU clock for Chrome-trace timestamps")

    metrics = sub.add_parser(
        "metrics",
        help="derive Prometheus/JSON metrics from a recorded JSONL trace")
    metrics.add_argument("trace", metavar="TRACE.jsonl",
                         help="trace file from `repro trace --format jsonl`")
    metrics.add_argument("--out", default=None, metavar="FILE",
                         help="write the Prometheus exposition here "
                              "(default: stdout)")
    metrics.add_argument("--json", default=None, metavar="FILE",
                         help="also write a JSON snapshot here")
    metrics.add_argument("--dropped", type=int, default=0, metavar="N",
                         help="ring-buffer drop count reported by the "
                              "recording run (exported as a gauge)")
    metrics.add_argument("--validate", action="store_true",
                         help="re-parse the written exposition as a "
                              "format check")

    export = sub.add_parser("export", help="write a figure's data series "
                                           "as CSV (for plotting)")
    export.add_argument("figure", choices=["fig2", "fig3", "fig4"],
                        help="which paper figure's series to export")
    export.add_argument("--output", default="-",
                        help="output path (default: stdout)")

    profile = sub.add_parser(
        "profile",
        help="self-profile one bench scenario: phase table + Chrome trace")
    profile.add_argument("--scenario", default="arrivals",
                         help="bench scenario to profile (default: arrivals; "
                              "see `repro bench --list`)")
    profile.add_argument("--output", default="profile", metavar="PREFIX",
                         help="Chrome-trace path prefix (default: ./profile "
                              "-> profile.chrome.json)")
    profile.add_argument("--top", type=_positive_int, default=15,
                         help="rows in the hot-phase table (default: 15)")
    profile.add_argument("--sort", choices=["self", "cum"], default="self",
                         help="order the table by self or cumulative time")
    _add_report_flags(profile)

    bench = sub.add_parser(
        "bench",
        help="run the pinned benchmark suite; write BENCH_<sha>.json and "
             "optionally gate against a baseline")
    bench.add_argument("--scenarios", nargs="+", default=None, metavar="NAME",
                       help="subset of scenarios to run (default: all)")
    bench.add_argument("--list", action="store_true",
                       help="list scenario names and exit")
    bench.add_argument("--repeat", type=_positive_int, default=3, metavar="K",
                       help="repetitions per scenario; min/median are over "
                            "these (default: 3)")
    bench.add_argument("--out", default=".", metavar="DIR",
                       help="directory for the BENCH_<sha>.json artifact "
                            "(default: .)")
    bench.add_argument("--compare", default=None, metavar="BASELINE.json",
                       help="gate this run against a baseline BENCH document")
    bench.add_argument("--fail-threshold", type=float, default=0.15,
                       help="min-time regression that fails the gate "
                            "(default: 0.15)")
    bench.add_argument("--warn-threshold", type=float, default=0.05,
                       help="min-time regression that warns (default: 0.05)")
    bench.add_argument("--warn-only", action="store_true",
                       help="report regressions but exit 0 (for comparing "
                            "across machines)")
    bench.add_argument("--profile-phases", action="store_true",
                       help="record each scenario's top self-time span "
                            "paths (one extra profiled run) so --compare "
                            "can attribute regressions to specific paths")
    _add_backend_flag(bench)

    inspect_cmd = sub.add_parser(
        "inspect",
        help="analyze a --report-dir run bundle: typed findings (critical "
             "path, stragglers, wait queue, cache) + hot phases")
    inspect_cmd.add_argument("bundle", metavar="DIR",
                             help="bundle directory written by --report-dir")
    inspect_cmd.add_argument("--html", default=None, metavar="FILE",
                             help="also write a self-contained HTML report")
    inspect_cmd.add_argument("--top", type=_positive_int, default=10,
                             help="rows in the hot-phase table (default: 10)")

    diff_cmd = sub.add_parser(
        "diff",
        help="compare two run bundles: determinism drift vs timing deltas, "
             "with wall-time change attributed to span paths")
    diff_cmd.add_argument("bundle_a", metavar="DIR_A",
                          help="baseline bundle directory")
    diff_cmd.add_argument("bundle_b", metavar="DIR_B",
                          help="candidate bundle directory")
    diff_cmd.add_argument("--html", default=None, metavar="FILE",
                          help="also write a self-contained HTML report")
    diff_cmd.add_argument("--top", type=_positive_int, default=10,
                          help="entries per ranked section (default: 10)")
    diff_cmd.add_argument("--expect-identical", action="store_true",
                          help="exit 1 unless the runs show zero "
                               "deterministic divergence")
    return parser


def cmd_catalog(_args) -> int:
    print(f"{'abbr':<8} {'suite':<10} {'MPKI':>8} {'kernels':>8} "
          f"{'footprint':>10}  class")
    for spec in TABLE2:
        cls = "memory" if spec.memory_bound else "compute"
        print(f"{spec.abbr:<8} {spec.suite:<10} {spec.mpki:>8} "
              f"{spec.num_kernels:>8} {spec.footprint_mb:>8}MB  {cls}")
    return 0


def cmd_run(args) -> int:
    abbrs = [a.strip() for a in args.mix.split(",") if a.strip()]
    print(f"mix: {'_'.join(abbrs)}  horizon: {args.cycles:,} cycles\n")
    registry, finish_metrics = _metrics_session(
        args, command="run", mix="_".join(abbrs))
    executor = _executor_from(args, metrics=registry)
    jobs = [SweepJob.build(name, abbrs, args.cycles, kwargs=_job_kwargs(args))
            for name in args.policy]
    results = executor.run(jobs)
    print(f"{'policy':<14} {'STP':>7} {'ANTT':>7} {'min NP':>7}  per-app NP")
    for name, result in zip(args.policy, results):
        nps = ", ".join(f"{r.name}={r.normalized_progress:.2f}"
                        for r in result.runs)
        print(f"{name:<14} {result.stp:>7.3f} {result.antt:>7.2f} "
              f"{result.min_np:>7.2f}  {nps}")
    print(f"\n{executor.stats.format()}")
    finish_metrics()
    return 0


def cmd_sweep(args) -> int:
    pairs = heterogeneous_pairs()
    print(f"sweeping {len(pairs)} heterogeneous mixes, "
          f"{args.cycles:,} cycles each\n")
    registry, finish_metrics = _metrics_session(args, command="sweep")
    recorder, obslog, run_id, finish_obs = _obs_session(
        args, "sweep", policies="_".join(args.policies), cycles=args.cycles)
    reporter, registry, recorder, obslog = _report_session(
        args, "sweep", registry, recorder, obslog,
        policies="_".join(args.policies), cycles=args.cycles)
    if reporter is not None:
        run_id = reporter.run_id
    capture = recorder is not None
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    executor = SweepExecutor(jobs=args.jobs, cache=cache, metrics=registry,
                             tracer=recorder, log=obslog, capture=capture)
    jobs = [SweepJob.build(name, pair, args.cycles, kwargs=_job_kwargs(args))
            for name in args.policies for pair in pairs]
    results = executor.run(jobs)
    if capture:
        from repro.exec import merge_envelopes

        merge_envelopes(executor.last_envelopes, tracer=recorder,
                        metrics=registry, run_id=run_id,
                        profiler=reporter.profiler if reporter else None)
    stats = {}
    for offset, name in enumerate(args.policies):
        chunk = results[offset * len(pairs):(offset + 1) * len(pairs)]
        stps = [r.stp for r in chunk]
        antts = [r.antt for r in chunk]
        stats[name] = (stps, antts)
        print(f"{name:<14} STP mean {statistics.fmean(stps):.3f} "
              f"(min {min(stps):.3f}, max {max(stps):.3f})   "
              f"ANTT mean {statistics.fmean(antts):.2f}")
    if "bp" in stats:
        base = statistics.fmean(stats["bp"][0])
        for name, (stps, _) in stats.items():
            if name != "bp":
                gain = statistics.fmean(stps) / base - 1
                print(f"\n{name} vs bp: {gain:+.1%}")
    print(f"\n{executor.stats.format()}")
    finish_obs()
    _finish_report(
        reporter,
        results={
            "policies": {
                name: {
                    "stp_mean": round(statistics.fmean(stps), 6),
                    "stp_min": round(min(stps), 6),
                    "stp_max": round(max(stps), 6),
                    "antt_mean": round(statistics.fmean(antts), 6),
                }
                for name, (stps, antts) in stats.items()
            },
            "mixes": len(pairs),
        },
        exec_stats=executor.stats,
    )
    finish_metrics()
    return 0


def cmd_qos(args) -> int:
    abbrs = [a.strip() for a in args.mix.split(",")]
    if len(abbrs) != 2:
        print("qos expects a two-benchmark mix", file=sys.stderr)
        return 2
    target = QoSTarget(app_id=1, target_np=args.target)
    print(f"high-priority app: {abbrs[1]} (target NP {args.target})\n")
    rows = [
        ("MPS", MultitaskSystem(
            build_mix(abbrs).applications,
            policy=MPSPolicy(sm_assignment={1: 60, 0: 20}))),
        ("QoS-BP", MultitaskSystem(
            build_mix([abbrs[1], abbrs[0]]).applications,
            policy=BPPolicy(qos_big_first=True))),
        ("UGPU", MultitaskSystem(
            build_mix(abbrs).applications, policy=UGPUPolicy(qos=target))),
    ]
    for name, system in rows:
        result = system.run(args.cycles)
        hp_name = abbrs[1]
        hp = next(r for r in result.runs if r.name == hp_name)
        verdict = "meets" if hp.normalized_progress >= args.target * 0.97 else "VIOLATES"
        print(f"{name:<8} STP {result.stp:.3f}  high-priority NP "
              f"{hp.normalized_progress:.3f} ({verdict})")
    return 0


def cmd_arrivals(args) -> int:
    """Open-system simulation: seeded Poisson arrivals over the catalog."""
    from repro.exec import resolve_policy

    schedule = poisson_arrivals(
        mean_interarrival_cycles=args.mean_interarrival,
        horizon_cycles=args.cycles,
        seed=args.seed,
    )
    initial = []
    label = "open"
    if args.initial:
        abbrs = [a.strip() for a in args.initial.split(",") if a.strip()]
        initial = build_mix(abbrs).applications
        label = "_".join(abbrs) + "+open"
    print(f"policy: {args.policy}  seed: {args.seed}  "
          f"horizon: {args.cycles:,} cycles")
    print(f"{len(schedule)} arrivals scheduled "
          f"(mean inter-arrival {args.mean_interarrival:,} cycles), "
          f"{len(initial)} jobs resident at cycle 0\n")
    registry, finish_metrics = _metrics_session(
        args, command="arrivals", policy=args.policy, seed=str(args.seed))
    recorder, obslog, _run_id, finish_obs = _obs_session(
        args, "arrivals", policy=args.policy, seed=str(args.seed),
        cycles=args.cycles)
    reporter, registry, recorder, obslog = _report_session(
        args, "arrivals", registry, recorder, obslog,
        policy=args.policy, seed=str(args.seed), cycles=args.cycles)
    factory = resolve_policy(args.policy)
    system = factory(initial, arrivals=schedule, max_slots=args.max_slots,
                     metrics=registry, tracer=recorder,
                     profiler=reporter.profiler if reporter else None)
    result = system.run(args.cycles, mix_name=label)
    print(f"{'job':<8} {'arrive':>12} {'admit':>12} {'depart':>12} "
          f"{'wait':>10} {'NP':>6}")
    for run in result.runs:
        depart = (f"{run.depart_cycle:>12,}" if run.depart_cycle is not None
                  else f"{'(resident)':>12}")
        print(f"{run.name:<8} {run.arrival_cycle:>12,} {run.admit_cycle:>12,} "
              f"{depart} {run.queueing_delay:>10,} "
              f"{run.normalized_progress(args.cycles):>6.2f}")
    print(f"\narrivals {result.arrivals}  admissions {result.admissions}  "
          f"departures {result.departures}  repartitions {result.repartitions}")
    if result.runs:
        print(f"interval STP {result.stp:.3f}  interval ANTT {result.antt:.2f}  "
              f"mean queueing delay {result.mean_queueing_delay:,.0f} cycles  "
              f"makespan {result.makespan:,} cycles")
    else:
        print("no job was admitted before the horizon")
    finish_obs()
    results_payload = {
        "policy": args.policy,
        "seed": args.seed,
        "arrivals": result.arrivals,
        "admissions": result.admissions,
        "departures": result.departures,
        "repartitions": result.repartitions,
    }
    if result.runs:
        results_payload.update(
            stp=round(result.stp, 6),
            antt=round(result.antt, 6),
            mean_queueing_delay=round(result.mean_queueing_delay, 3),
            makespan=result.makespan,
        )
    _finish_report(reporter, results=results_payload)
    finish_metrics()
    return 0


def cmd_fleet(args) -> int:
    """Fleet-scale placement shoot-out over one seeded arrival stream.

    Everything on stdout is deterministic (no wall times), so CI can
    ``diff`` a serial run against a sharded one; the ExecStats footer
    goes to stderr.
    """
    from repro.cluster import FleetShardResult, FleetSimulator

    schedule = poisson_arrivals(
        mean_interarrival_cycles=args.mean_interarrival,
        horizon_cycles=args.cycles,
        seed=args.seed,
        instructions_per_kernel=args.instructions_per_kernel,
    )
    capacity = args.nodes * args.tenants_per_node
    print(f"fleet: {args.nodes} nodes x {args.tenants_per_node} slots "
          f"({capacity} slots)  slicing: {args.slicing}  seed: {args.seed}")
    print(f"{len(schedule)} arrivals over {args.cycles:,} cycles "
          f"(mean inter-arrival {args.mean_interarrival:,}, "
          f"round {args.round_cycles:,})\n")
    registry, finish_metrics = _metrics_session(
        args, command="fleet", slicing=args.slicing, seed=str(args.seed))
    recorder, obslog, _run_id, finish_obs = _obs_session(
        args, "fleet", seed=str(args.seed), nodes=args.nodes,
        slicing=args.slicing, cycles=args.cycles)
    reporter, registry, recorder, obslog = _report_session(
        args, "fleet", registry, recorder, obslog,
        seed=str(args.seed), nodes=args.nodes,
        slicing=args.slicing, cycles=args.cycles)
    cache = None
    if not args.no_cache:
        # Fleet shards live in their own typed cache directory so the two
        # payload kinds (SystemResult vs FleetShardResult) never collide.
        base = args.cache_dir or default_cache_dir()
        cache = ResultCache(os.path.join(base, "fleet"),
                            result_types=(FleetShardResult,))
    print(f"{'policy':<18} {'STP':>8} {'ANTT':>8} {'q-delay':>12} "
          f"{'frag':>7} {'active':>7} {'adm':>6} {'dep':>6} {'mig':>5} "
          f"{'wait':>5}  energy(J)")
    health_reports = []
    placement_summaries = {}
    with SweepExecutor(jobs=args.jobs, cache=cache,
                       metrics=registry, log=obslog) as executor:
        for name in args.placement:
            monitor = None
            if args.health:
                from repro.cluster import FleetHealthMonitor

                monitor = FleetHealthMonitor(
                    metrics=registry, log=obslog, tracer=recorder)
            simulator = FleetSimulator(
                args.nodes,
                schedule,
                PlacementPolicy.parse(name),
                slicing=args.slicing,
                tenants_per_node=args.tenants_per_node,
                round_cycles=args.round_cycles,
                horizon_cycles=args.cycles,
                rebalance_every=args.rebalance_every,
                instructions_per_kernel=args.instructions_per_kernel,
                executor=executor,
                metrics=registry,
                # The recorder stays cycle-domain: the simulator (and its
                # absorbed worker node-physics spans) emits cycles, while
                # the executor's own job spans are wall seconds — mixing
                # the two on one timeline would be meaningless.
                tracer=recorder,
                log=obslog,
                health=monitor,
                profiler=reporter.profiler if reporter else None,
            )
            result = simulator.run()
            placement_summaries[name] = result.summary()
            if monitor is not None:
                health_reports.append((name, result.health))
            energy = (f"{result.energy.total:>10.3f}"
                      if result.energy is not None else f"{'-':>10}")
            print(f"{name:<18} {result.stp:>8.3f} {result.antt:>8.2f} "
                  f"{result.mean_queueing_delay:>12,.0f} "
                  f"{result.fragmentation:>7.3f} "
                  f"{result.mean_active_nodes:>7.1f} "
                  f"{result.admissions:>6} {result.departures:>6} "
                  f"{result.migrations:>5} {result.waiting_at_horizon:>5} "
                  f"{energy}")
    for name, report in health_reports:
        print(f"\n[{name}] {report.format()}")
    print(f"\n{executor.stats.format()}", file=sys.stderr)
    finish_obs()
    _finish_report(
        reporter,
        results={"placements": placement_summaries},
        exec_stats=executor.stats,
    )
    finish_metrics()
    return 0


def cmd_trace(args) -> int:
    """Run one traced simulation and export/summarize the timeline."""
    from repro.exec import resolve_policy
    from repro.trace import (
        TraceRecorder,
        summarize,
        write_chrome_trace,
        write_jsonl,
    )

    abbrs = [a.strip() for a in args.mix.split(",") if a.strip()]
    recorder = TraceRecorder(capacity=args.capacity, categories=args.categories)
    factory = resolve_policy(args.policy)
    system = factory(build_mix(abbrs).applications, tracer=recorder)
    result = system.run(args.cycles, mix_name="_".join(abbrs))
    print(f"{result.policy} on {result.mix_name}: STP {result.stp:.3f}  "
          f"ANTT {result.antt:.2f}  repartitions {result.repartitions}\n")

    events = recorder.events()
    if args.format in ("jsonl", "both"):
        path = f"{args.output}.jsonl"
        print(f"wrote {write_jsonl(events, path)} events to {path}")
    if args.format in ("chrome", "both"):
        path = f"{args.output}.chrome.json"
        count = write_chrome_trace(events, path, clock_ghz=args.clock_ghz)
        print(f"wrote {count} trace records to {path} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")
    if recorder.dropped:
        print(f"note: ring buffer dropped {recorder.dropped} oldest events "
              f"(--capacity {args.capacity})")
    print(f"\n{summarize(events, dropped_events=recorder.dropped).format()}")
    return 0


def cmd_metrics(args) -> int:
    """Fold a recorded trace into a registry and export it (offline bridge)."""
    from repro.telemetry import (
        registry_from_trace,
        stamp,
        to_prometheus,
        validate_prometheus_file,
        write_json,
        write_prometheus,
    )
    from repro.trace import read_jsonl

    events = read_jsonl(args.trace)
    registry = registry_from_trace(events, dropped_events=args.dropped)
    stamp(registry, None, source=os.path.basename(args.trace))
    if args.out:
        count = write_prometheus(registry, args.out)
        print(f"folded {len(events)} events into {count} metric samples "
              f"at {args.out}")
        if args.validate:
            validate_prometheus_file(args.out)
            print(f"{args.out}: exposition format OK")
    else:
        sys.stdout.write(to_prometheus(registry))
    if args.json:
        families = write_json(registry, args.json)
        print(f"wrote {families} metric families to {args.json}")
    return 0


def cmd_export(args) -> int:
    """Regenerate a motivation figure's series as CSV."""
    from repro import GPUConfig, PerformanceModel
    from repro.workloads import build_application

    model = PerformanceModel(GPUConfig())
    pvc = build_application("PVC").kernels[0]
    dxtc = build_application("DXTC").kernels[0]
    rows: List[List] = []
    if args.figure == "fig2":
        base = model.throughput(dxtc, 40, 16).ipc
        rows.append(["series", "x", "normalized_perf"])
        for m in range(2, 33, 2):
            rows.append(["vs_channels", m, model.throughput(dxtc, 40, m).ipc / base])
        for s in range(10, 81, 5):
            rows.append(["vs_sms", s, model.throughput(dxtc, s, 16).ipc / base])
    elif args.figure == "fig3":
        base = model.throughput(pvc, 40, 16).ipc
        rows.append(["series", "x", "normalized_perf"])
        for m in range(2, 33, 2):
            rows.append(["vs_channels", m, model.throughput(pvc, 40, m).ipc / base])
        for s in range(8, 81, 4):
            rows.append(["vs_sms", s, model.throughput(pvc, s, 16).ipc / base])
    else:  # fig4
        alone_p = model.throughput(pvc, 80, 32).ipc
        alone_d = model.throughput(dxtc, 80, 32).ipc
        rows.append(["pvc_sms", "pvc_channels", "stp"])
        for sms in range(4, 77, 4):
            for mcs in range(4, 29, 4):
                stp = (model.throughput(pvc, sms, mcs).ipc / alone_p
                       + model.throughput(dxtc, 80 - sms, 32 - mcs).ipc / alone_d)
                rows.append([sms, mcs, round(stp, 4)])

    text = "\n".join(",".join(str(c) for c in row) for row in rows) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(rows) - 1} rows to {args.output}")
    return 0


def cmd_profile(args) -> int:
    """Self-profile one bench scenario with the phase profiler attached."""
    from repro.profiling import PhaseProfiler, scenario_names, scenarios

    suite = scenarios()
    if args.scenario not in suite:
        print(f"unknown scenario {args.scenario!r}; known: "
              f"{', '.join(scenario_names())}", file=sys.stderr)
        return 2
    scenario = suite[args.scenario]
    print(f"profiling scenario {scenario.name}: {scenario.description}\n")
    profiler = PhaseProfiler()
    meta = scenario.fn(profiler) or {}
    print(profiler.format_table(top=args.top, sort=args.sort))
    if meta:
        print("\n" + "  ".join(f"{k}={v}" for k, v in meta.items()))
    path = f"{args.output}.chrome.json"
    count = profiler.write_chrome_trace(path)
    print(f"\nwrote {count} phase spans to {path} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    reporter, _registry, _recorder, _obslog = _report_session(
        args, "profile", None, None, None, scenario=args.scenario)
    if reporter is not None:
        reporter.profiler.absorb(profiler.snapshot())
        # Phase spans are µs-stamped; clock_ghz=0.001 renders them 1:1
        # in the bundle's Chrome trace (same convention as
        # PhaseProfiler.write_chrome_trace).
        reporter.recorder.absorb(profiler.trace_events())
        _finish_report(
            reporter,
            results={"scenario": scenario.name, "meta": meta},
            clock_ghz=0.001,
        )
    return 0


def cmd_bench(args) -> int:
    """Run the pinned suite; write the artifact; optionally gate."""
    from repro.profiling import (
        bench_filename,
        compare_benchmarks,
        read_bench,
        run_bench,
        scenario_names,
        write_bench,
    )

    if args.list:
        for name in scenario_names():
            print(name)
        return 0
    doc = run_bench(names=args.scenarios, repeats=args.repeat,
                    progress=print, profile_phases=args.profile_phases)
    path = write_bench(doc, args.out)
    print(f"\nwrote {bench_filename(doc)} "
          f"({len(doc['scenarios'])} scenarios, {args.repeat}x each)")
    if args.compare is None:
        return 0
    baseline = read_bench(args.compare)
    comparison = compare_benchmarks(
        baseline, doc,
        fail_threshold=args.fail_threshold,
        warn_threshold=args.warn_threshold,
    )
    print(f"\n{comparison.format()}")
    if comparison.failed and args.warn_only:
        print("(--warn-only: exiting 0 despite the failure above)")
        return 0
    return 1 if comparison.failed else 0


def cmd_inspect(args) -> int:
    """Post-hoc analysis of one --report-dir run bundle."""
    from repro.inspect import analyze, load_bundle, render_html, render_text

    model = load_bundle(args.bundle)
    findings = analyze(model)
    sys.stdout.write(render_text(model, findings, top=args.top))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(model, findings, top=args.top))
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
    return 0


def cmd_diff(args) -> int:
    """Run-vs-run comparison of two --report-dir run bundles."""
    from repro.inspect import diff_bundles, render_diff_html, render_diff_text

    diff = diff_bundles(args.bundle_a, args.bundle_b)
    sys.stdout.write(render_diff_text(diff, top=args.top))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_diff_html(diff))
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
    if args.expect_identical and not diff.zero_divergence:
        print("--expect-identical: deterministic divergence found",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] = None) -> int:
    args = _parser().parse_args(argv)
    backend = getattr(args, "kernel_backend", None)
    if backend is not None:
        # Process-wide default for every system this command constructs,
        # plus the environment variable so spawned pool workers inherit it.
        set_default_kernel_backend(backend)
        os.environ["REPRO_KERNEL_BACKEND"] = backend
    handlers = {
        "catalog": cmd_catalog,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "qos": cmd_qos,
        "arrivals": cmd_arrivals,
        "fleet": cmd_fleet,
        "trace": cmd_trace,
        "metrics": cmd_metrics,
        "export": cmd_export,
        "profile": cmd_profile,
        "bench": cmd_bench,
        "inspect": cmd_inspect,
        "diff": cmd_diff,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
