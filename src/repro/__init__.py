"""repro — UGPU: Dynamically Constructing Unbalanced GPUs (ISCA 2025).

A full-system reproduction of UGPU: dynamically constructed, unbalanced
GPU slices with demand-aware resource partitioning and PageMove intra-HBM
page migration.

Quickstart::

    from repro import BPPolicy, MultitaskSystem, UGPUPolicy, build_mix

    mix = build_mix(["PVC", "DXTC"])
    bp = MultitaskSystem(mix.applications, policy=BPPolicy()).run()
    mix2 = build_mix(["PVC", "DXTC"])
    ugpu = MultitaskSystem(mix2.applications, policy=UGPUPolicy()).run()
    print(f"STP: BP={bp.stp:.2f}  UGPU={ugpu.stp:.2f}")

Open-system runs add an arrival schedule::

    from repro import ArrivalSchedule, poisson_arrivals

    arrivals = poisson_arrivals(5_000_000, 25_000_000, seed=0)
    result = MultitaskSystem([], policy=UGPUPolicy(), arrivals=arrivals).run()
    print(f"interval STP={result.stp:.2f}  makespan={result.makespan}")

The pre-1.1 subclass spellings (``UGPUSystem``, ``BPSystem``, ...) remain
importable from here for one release; they are deprecated shims around
``MultitaskSystem(apps, policy=...)``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

import warnings as _warnings

# Defined before any submodule import: the exec job specs and the fleet
# shard jobs fold the package version into their cache keys, so their
# modules do ``from repro import __version__`` while this package is
# still initializing.
__version__ = "1.1.0"

from repro.cluster import (
    ClusterScheduler,
    FleetHealthMonitor,
    GPUNode,
    PlacementPolicy,
)
from repro.core import (
    AlgorithmCostModel,
    AppProfile,
    DemandAwarePartitioner,
    EpochProfiler,
    GPUSlice,
    MultitaskSystem,
    OpenSystemResult,
    PartitionState,
    QoSTarget,
    ResourceAllocation,
    SystemResult,
)
from repro.gpu import Application, GPUConfig, Kernel, PerformanceModel
from repro.hbm import HBMConfig, HBMSystem, HBMTiming
from repro.metrics import AppRun, EnergyModel, IntervalRun, antt, stp
from repro.pagemove import (
    MigrationCostModel,
    MigrationEngine,
    MigrationMode,
    PageMoveAddressMapping,
)
from repro.policies import (
    BPBigSmallPolicy,
    BPPolicy,
    BPSmallBigPolicy,
    CDSearchPolicy,
    EvenPartitionPolicy,
    MPSPolicy,
    PartitionPolicy,
    UGPUPolicy,
)
from repro.obslog import ObsLogger, read_obslog, validate_obslog_file
from repro.telemetry import (
    CsvSampler,
    MetricsRegistry,
    MetricsServer,
    NullRegistry,
    collect_provenance,
    registry_from_trace,
    to_json,
    to_prometheus,
    write_prometheus,
)
from repro.trace import (
    TraceCategory,
    TraceEvent,
    TraceRecorder,
    TraceSummary,
    read_jsonl,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads import (
    TABLE2,
    ArrivalEvent,
    ArrivalSchedule,
    build_ai_application,
    build_application,
    build_mix,
    catalog,
    heterogeneous_pairs,
    homogeneous_pairs,
    poisson_arrivals,
)

from repro.exec import (  # noqa: E402
    ExecStats,
    ResultCache,
    SweepExecutor,
    SweepJob,
    register_policy,
    registered_policies,
)

#: Deprecated subclass spellings, resolved lazily (PEP 562) so importing
#: ``repro`` stays warning-free; accessing one emits DeprecationWarning
#: once, then the shim class (which warns again at construction) is
#: cached in the module namespace.
_DEPRECATED_SYSTEMS = {
    "UGPUSystem": ("repro.core.ugpu", "UGPUPolicy"),
    "BPSystem": ("repro.baselines.bp", "BPPolicy"),
    "BPBigSmallSystem": ("repro.baselines.bp", "BPBigSmallPolicy"),
    "BPSmallBigSystem": ("repro.baselines.bp", "BPSmallBigPolicy"),
    "MPSSystem": ("repro.baselines.mps", "MPSPolicy"),
    "CDSearchSystem": ("repro.baselines.cd_search", "CDSearchPolicy"),
}


def __getattr__(name):
    try:
        module_name, policy_name = _DEPRECATED_SYSTEMS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    _warnings.warn(
        f"repro.{name} is deprecated; use "
        f"MultitaskSystem(apps, policy={policy_name}(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


__all__ = [
    "__version__",
    # GPU substrate
    "GPUConfig",
    "Kernel",
    "Application",
    "PerformanceModel",
    # HBM substrate
    "HBMConfig",
    "HBMTiming",
    "HBMSystem",
    # PageMove
    "PageMoveAddressMapping",
    "MigrationMode",
    "MigrationCostModel",
    "MigrationEngine",
    # Core
    "ResourceAllocation",
    "GPUSlice",
    "PartitionState",
    "AppProfile",
    "EpochProfiler",
    "DemandAwarePartitioner",
    "AlgorithmCostModel",
    "QoSTarget",
    "MultitaskSystem",
    "SystemResult",
    "OpenSystemResult",
    # Partition policies
    "PartitionPolicy",
    "EvenPartitionPolicy",
    "BPPolicy",
    "BPBigSmallPolicy",
    "BPSmallBigPolicy",
    "MPSPolicy",
    "CDSearchPolicy",
    "UGPUPolicy",
    # Cluster extension
    "GPUNode",
    "ClusterScheduler",
    "PlacementPolicy",
    "FleetHealthMonitor",
    # Deprecated subclass spellings (lazy shims)
    "UGPUSystem",
    "BPSystem",
    "BPBigSmallSystem",
    "BPSmallBigSystem",
    "MPSSystem",
    "CDSearchSystem",
    # Metrics
    "AppRun",
    "IntervalRun",
    "stp",
    "antt",
    "EnergyModel",
    # Telemetry
    "MetricsRegistry",
    "NullRegistry",
    "CsvSampler",
    "MetricsServer",
    "collect_provenance",
    "registry_from_trace",
    "to_prometheus",
    "to_json",
    "write_prometheus",
    # Structured logging
    "ObsLogger",
    "read_obslog",
    "validate_obslog_file",
    # Tracing
    "TraceCategory",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "read_jsonl",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
    # Sweep execution engine
    "ExecStats",
    "ResultCache",
    "SweepExecutor",
    "SweepJob",
    "register_policy",
    "registered_policies",
    # Workloads
    "TABLE2",
    "catalog",
    "build_application",
    "build_ai_application",
    "build_mix",
    "heterogeneous_pairs",
    "homogeneous_pairs",
    "ArrivalEvent",
    "ArrivalSchedule",
    "poisson_arrivals",
]
