"""repro — UGPU: Dynamically Constructing Unbalanced GPUs (ISCA 2025).

A full-system reproduction of UGPU: dynamically constructed, unbalanced
GPU slices with demand-aware resource partitioning and PageMove intra-HBM
page migration.

Quickstart::

    from repro import BPSystem, UGPUSystem, build_mix

    mix = build_mix(["PVC", "DXTC"])
    bp = BPSystem(mix.applications).run()
    mix2 = build_mix(["PVC", "DXTC"])
    ugpu = UGPUSystem(mix2.applications).run()
    print(f"STP: BP={bp.stp:.2f}  UGPU={ugpu.stp:.2f}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.baselines import (
    BPBigSmallSystem,
    BPSmallBigSystem,
    BPSystem,
    CDSearchSystem,
    MPSSystem,
)
from repro.cluster import ClusterScheduler, GPUNode, PlacementPolicy
from repro.core import (
    AlgorithmCostModel,
    AppProfile,
    DemandAwarePartitioner,
    EpochProfiler,
    GPUSlice,
    MultitaskSystem,
    PartitionState,
    QoSTarget,
    ResourceAllocation,
    SystemResult,
    UGPUSystem,
)
from repro.gpu import Application, GPUConfig, Kernel, PerformanceModel
from repro.hbm import HBMConfig, HBMSystem, HBMTiming
from repro.metrics import AppRun, EnergyModel, antt, stp
from repro.pagemove import (
    MigrationCostModel,
    MigrationEngine,
    MigrationMode,
    PageMoveAddressMapping,
)
from repro.trace import (
    TraceCategory,
    TraceEvent,
    TraceRecorder,
    TraceSummary,
    read_jsonl,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads import (
    TABLE2,
    build_ai_application,
    build_application,
    build_mix,
    catalog,
    heterogeneous_pairs,
    homogeneous_pairs,
)

__version__ = "1.0.0"

# Imported after __version__: the exec job specs fold the package version
# into their cache keys.
from repro.exec import (  # noqa: E402
    ExecStats,
    ResultCache,
    SweepExecutor,
    SweepJob,
    register_policy,
    registered_policies,
)

__all__ = [
    "__version__",
    # GPU substrate
    "GPUConfig",
    "Kernel",
    "Application",
    "PerformanceModel",
    # HBM substrate
    "HBMConfig",
    "HBMTiming",
    "HBMSystem",
    # PageMove
    "PageMoveAddressMapping",
    "MigrationMode",
    "MigrationCostModel",
    "MigrationEngine",
    # Core
    "ResourceAllocation",
    "GPUSlice",
    "PartitionState",
    "AppProfile",
    "EpochProfiler",
    "DemandAwarePartitioner",
    "AlgorithmCostModel",
    "QoSTarget",
    "MultitaskSystem",
    "SystemResult",
    "UGPUSystem",
    # Cluster extension
    "GPUNode",
    "ClusterScheduler",
    "PlacementPolicy",
    # Baselines
    "BPSystem",
    "BPBigSmallSystem",
    "BPSmallBigSystem",
    "MPSSystem",
    "CDSearchSystem",
    # Metrics
    "AppRun",
    "stp",
    "antt",
    "EnergyModel",
    # Tracing
    "TraceCategory",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "read_jsonl",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
    # Sweep execution engine
    "ExecStats",
    "ResultCache",
    "SweepExecutor",
    "SweepJob",
    "register_policy",
    "registered_policies",
    # Workloads
    "TABLE2",
    "catalog",
    "build_application",
    "build_ai_application",
    "build_mix",
    "heterogeneous_pairs",
    "homogeneous_pairs",
]
